package spinngo

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"spinngo/internal/boot"
	"spinngo/internal/chip"
	"spinngo/internal/host"
	"spinngo/internal/kernel"
	"spinngo/internal/mapping"
	"spinngo/internal/neural"
	"spinngo/internal/packet"
	"spinngo/internal/router"
	"spinngo/internal/sim"
	"spinngo/internal/topo"
)

// Placement selects the fragment placement policy.
type Placement int

const (
	// Serpentine keeps consecutive fragments on nearby chips (default).
	Serpentine Placement = iota
	// Random scatters fragments uniformly (the virtualised-topology
	// ablation: still correct, costs more routing).
	Random
)

// MachineConfig describes the simulated machine.
type MachineConfig struct {
	// Width and Height are the toroidal mesh dimensions in chips.
	Width, Height int
	// CoresPerChip is the full core complement (default 20).
	CoresPerChip int
	// MaxNeuronsPerCore bounds fragment sizes (default 256).
	MaxNeuronsPerCore int
	// CoreMIPS is per-core instruction throughput (default 200).
	CoreMIPS float64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Workers is the number of torus shards simulated in parallel
	// (conservative PDES over the partitioned mesh). 0 means automatic:
	// the shard count is sized from the torus and runtime.GOMAXPROCS,
	// and — when Partition is also automatic — the engine adapts its
	// per-window parallelism to the observed event density. Explicit
	// values are clamped down to the granularity of the chosen
	// geometry (bands: one per row or column; blocks: one per chip);
	// negative values and values above Width*Height are rejected by
	// Validate. Workers=1 reproduces the single-engine event order
	// exactly, and the determinism contract is that the same Seed and
	// config produce an identical run report for every worker count and
	// partition geometry.
	Workers int
	// Partition selects the shard geometry: PartitionBands cuts whole
	// rows or columns, PartitionBlocks tiles the torus with a 2D block
	// grid minimising cut links, PartitionBoards (requires Boards)
	// aligns shard boundaries to board edges so the cut contains only
	// board-to-board links, and PartitionAuto (or "") compares the
	// candidates and keeps whichever reaches the requested shard count
	// with the widest lookahead, then the smallest cut. Results are
	// byte-identical for every geometry; the choice affects only
	// synchronisation cost.
	Partition string
	// Boards is the physical board tiling in chips per board as "WxH"
	// (e.g. "8x6" packs the paper's 48-chip boards). "" means a uniform
	// fabric with no board hierarchy. When set, the boards must tile
	// the torus exactly; links crossing a board edge (including torus
	// wrap links, which are cabled between edge boards) use the
	// board-to-board PHY parameters, and the PartitionBoards strategy
	// becomes available. Configuring Boards changes the simulated
	// hardware — link timings and energy — so reports differ from the
	// uniform fabric, but remain byte-identical across all Workers and
	// Partition choices on the same Boards config.
	Boards string
	// BoardLinkParams selects the board-to-board PHY preset: "" or
	// BoardLinkSlow for the self-timed board-to-board defaults (longer
	// wire flight, costlier transitions — the realistic model), or
	// BoardLinkUniform to reuse the on-board parameters (hierarchy
	// without PHY heterogeneity, the ablation). Requires Boards.
	BoardLinkParams string
	// Cabinets is the cabinet tiling of the board grid in boards per
	// cabinet as "WxH" (e.g. "2x2" racks four boards to a cabinet). ""
	// means no third packaging level. Requires Boards; the cabinets must
	// tile the board grid exactly. When set, links crossing a cabinet
	// edge (including torus wrap links, cabled between edge cabinets)
	// use the cabinet-to-cabinet PHY parameters — the slowest, costliest
	// wires in the machine — and the PartitionCabinets strategy becomes
	// available, whose cabinet-aligned cuts earn the widest lookahead of
	// all.
	Cabinets string
	// CabinetLinkParams selects the cabinet-to-cabinet PHY preset: "" or
	// CabinetLinkSlow for the long-cable defaults (the realistic model),
	// or CabinetLinkUniform to reuse the board-to-board parameters (a
	// third level without extra PHY heterogeneity, the ablation).
	// Requires Cabinets.
	CabinetLinkParams string
	// Repartition selects the runtime re-partitioning policy: "" or
	// RepartitionOff freezes the construction-time partition (the
	// historical behaviour), RepartitionAuto re-runs the geometry/shard
	// comparison at quiescence boundaries — between Run calls, and
	// urgently after FailLink or migration storms — against the observed
	// per-chip event densities, swapping the partition when the
	// projected cost improves by a threshold. Re-partitioning is pure
	// execution strategy: reports stay byte-identical with it on or off.
	Repartition string
	// HostOrigin is the Ethernet-attached gateway chip the host system
	// talks through, as "x,y" (e.g. "4,0"). "" means chip (0,0). The
	// boot sequence always roots its coordinate flood at (0,0) — the
	// paper's symmetry-breaking chip — but real machines carry one
	// Ethernet port per board, so the host may attach anywhere; only
	// command round-trip times change with the attach point.
	HostOrigin string
	// DisableEmergencyRouting turns off the Fig-8 mechanism (ablation).
	DisableEmergencyRouting bool
	// Placement policy (default Serpentine).
	Placement Placement
	// CoreFaultProb injects per-core self-test failures at boot.
	CoreFaultProb float64
	// MaxAppCoresPerChip caps how many application cores the mapper
	// uses per chip (0 = all available). Lower values spread a small
	// model over more chips, exercising the interconnect.
	MaxAppCoresPerChip int
	// FillRedundancy is how many copies of each flood-fill chunk a chip
	// forwards during host bulk loads (boot image, application data,
	// FillMem) before going quiet. 0 or 1 forwards only the first copy
	// — the historical behaviour; 2..6 keep bulk loads alive through
	// fault campaigns that kill chips or links on the primary flood
	// path, at proportionally more flood traffic. Changing it changes
	// the simulated traffic, so reports differ between redundancy
	// levels but remain byte-identical across Workers and Partition.
	FillRedundancy int
	// EventQueue selects each shard's pending-event structure: "" or
	// EventQueueWheel for the calendar queue (the fast default), or
	// EventQueueHeap for the reference binary heap. Both pop events in
	// the identical canonical order, so results are byte-identical —
	// the heap exists for differential debugging of the wheel.
	EventQueue string
	// SoloThresholdEvents tunes the adaptive engine's solo bound: a
	// PDES window whose smoothed events-per-active-shard density sits
	// below it runs inline on the coordinator instead of paying a pool
	// hand-off. 0 keeps the default (16, calibrated on the reference
	// sweep); negative values are rejected. Purely an execution-cost
	// knob: like Workers and Partition it never changes results.
	SoloThresholdEvents int
}

// Partition geometry names accepted by MachineConfig.Partition.
const (
	PartitionAuto     = "auto"
	PartitionBands    = "bands"
	PartitionBlocks   = "blocks"
	PartitionBoards   = "boards"
	PartitionCabinets = "cabinets"
)

// Board-to-board link presets accepted by MachineConfig.BoardLinkParams.
const (
	BoardLinkSlow    = "slow"
	BoardLinkUniform = "uniform"
)

// Cabinet link presets accepted by MachineConfig.CabinetLinkParams.
const (
	CabinetLinkSlow    = "slow"
	CabinetLinkUniform = "uniform"
)

// Re-partitioning policies accepted by MachineConfig.Repartition.
const (
	RepartitionOff  = "off"
	RepartitionAuto = "auto"
)

// Event-queue structures accepted by MachineConfig.EventQueue.
const (
	EventQueueWheel = sim.QueueWheel
	EventQueueHeap  = sim.QueueHeap
)

func (c *MachineConfig) fillDefaults() {
	if c.CoresPerChip == 0 {
		c.CoresPerChip = chip.CoresPerChip
	}
	if c.MaxNeuronsPerCore == 0 {
		c.MaxNeuronsPerCore = 256
	}
	if c.CoreMIPS == 0 {
		c.CoreMIPS = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Validate rejects contradictory configurations with a descriptive
// error. NewMachine calls it; it is exported so front ends can check a
// configuration before committing to building a machine.
func (c MachineConfig) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("spinngo: invalid machine %dx%d", c.Width, c.Height)
	}
	if c.Workers < 0 {
		return fmt.Errorf("spinngo: Workers must be non-negative (0 = automatic), got %d", c.Workers)
	}
	if max := c.Width * c.Height; c.Workers > max {
		return fmt.Errorf("spinngo: Workers %d exceeds the %dx%d machine's %d chips",
			c.Workers, c.Width, c.Height, max)
	}
	switch c.Partition {
	case "", PartitionAuto, PartitionBands, PartitionBlocks, PartitionBoards, PartitionCabinets:
	default:
		return fmt.Errorf("spinngo: unknown Partition %q (want %q, %q, %q, %q or %q)",
			c.Partition, PartitionAuto, PartitionBands, PartitionBlocks, PartitionBoards,
			PartitionCabinets)
	}
	if c.Boards != "" {
		bg, err := topo.ParseBoardGeometry(c.Boards)
		if err != nil {
			return fmt.Errorf("spinngo: bad Boards: %v", err)
		}
		if err := bg.Validate(topo.MustTorus(c.Width, c.Height)); err != nil {
			return fmt.Errorf("spinngo: bad Boards: %v", err)
		}
	} else {
		if c.Partition == PartitionBoards {
			return fmt.Errorf("spinngo: Partition %q requires Boards (the board tiling, e.g. \"8x6\")",
				PartitionBoards)
		}
		if c.BoardLinkParams != "" {
			return fmt.Errorf("spinngo: BoardLinkParams %q requires Boards", c.BoardLinkParams)
		}
	}
	switch c.BoardLinkParams {
	case "", BoardLinkSlow, BoardLinkUniform:
	default:
		return fmt.Errorf("spinngo: unknown BoardLinkParams %q (want %q or %q)",
			c.BoardLinkParams, BoardLinkSlow, BoardLinkUniform)
	}
	if c.Cabinets != "" {
		if c.Boards == "" {
			return fmt.Errorf("spinngo: Cabinets requires Boards (the board tiling, e.g. \"8x6\")")
		}
		cg, err := topo.ParseCabinetGeometry(c.Cabinets)
		if err != nil {
			return fmt.Errorf("spinngo: bad Cabinets: %v", err)
		}
		if err := cg.Validate(topo.MustTorus(c.Width, c.Height), c.boardGeometry()); err != nil {
			return fmt.Errorf("spinngo: bad Cabinets: %v", err)
		}
	} else {
		if c.Partition == PartitionCabinets {
			return fmt.Errorf("spinngo: Partition %q requires Cabinets (the cabinet tiling, e.g. \"2x2\")",
				PartitionCabinets)
		}
		if c.CabinetLinkParams != "" {
			return fmt.Errorf("spinngo: CabinetLinkParams %q requires Cabinets", c.CabinetLinkParams)
		}
	}
	switch c.CabinetLinkParams {
	case "", CabinetLinkSlow, CabinetLinkUniform:
	default:
		return fmt.Errorf("spinngo: unknown CabinetLinkParams %q (want %q or %q)",
			c.CabinetLinkParams, CabinetLinkSlow, CabinetLinkUniform)
	}
	switch c.Repartition {
	case "", RepartitionOff, RepartitionAuto:
	default:
		return fmt.Errorf("spinngo: unknown Repartition %q (want %q or %q)",
			c.Repartition, RepartitionOff, RepartitionAuto)
	}
	switch c.EventQueue {
	case "", EventQueueWheel, EventQueueHeap:
	default:
		return fmt.Errorf("spinngo: unknown EventQueue %q (want %q or %q)",
			c.EventQueue, EventQueueWheel, EventQueueHeap)
	}
	if c.SoloThresholdEvents < 0 {
		return fmt.Errorf("spinngo: SoloThresholdEvents must be non-negative (0 = default), got %d",
			c.SoloThresholdEvents)
	}
	if c.FillRedundancy < 0 || c.FillRedundancy > topo.NumDirs {
		return fmt.Errorf("spinngo: FillRedundancy must be 0..%d (0 = default 1), got %d",
			topo.NumDirs, c.FillRedundancy)
	}
	if _, err := c.hostOrigin(); err != nil {
		return err
	}
	return nil
}

// hostOrigin parses and bounds-checks the configured host attach chip.
func (c MachineConfig) hostOrigin() (topo.Coord, error) {
	if c.HostOrigin == "" {
		return topo.Coord{}, nil
	}
	parts := strings.Split(c.HostOrigin, ",")
	if len(parts) != 2 {
		return topo.Coord{}, fmt.Errorf("spinngo: bad HostOrigin %q (want \"x,y\")", c.HostOrigin)
	}
	x, errX := strconv.Atoi(strings.TrimSpace(parts[0]))
	y, errY := strconv.Atoi(strings.TrimSpace(parts[1]))
	if errX != nil || errY != nil {
		return topo.Coord{}, fmt.Errorf("spinngo: bad HostOrigin %q (want \"x,y\")", c.HostOrigin)
	}
	if x < 0 || x >= c.Width || y < 0 || y >= c.Height {
		return topo.Coord{}, fmt.Errorf("spinngo: HostOrigin (%d,%d) outside the %dx%d machine",
			x, y, c.Width, c.Height)
	}
	return topo.Coord{X: x, Y: y}, nil
}

// boardGeometry resolves the configured board tiling; zero when the
// fabric is uniform. Valid only after Validate has accepted the config.
func (c MachineConfig) boardGeometry() topo.BoardGeometry {
	if c.Boards == "" {
		return topo.BoardGeometry{}
	}
	bg, err := topo.ParseBoardGeometry(c.Boards)
	if err != nil {
		panic(err) // Validate accepted it
	}
	return bg
}

// cabinetGeometry resolves the configured cabinet tiling; zero when no
// third packaging level is configured. Valid only after Validate has
// accepted the config.
func (c MachineConfig) cabinetGeometry() topo.CabinetGeometry {
	if c.Cabinets == "" {
		return topo.CabinetGeometry{}
	}
	cg, err := topo.ParseCabinetGeometry(c.Cabinets)
	if err != nil {
		panic(err) // Validate accepted it
	}
	return cg
}

// choosePartition resolves the configured geometry and worker count
// into a concrete partition, and reports whether the engine should run
// with adaptive worker selection (automatic geometry AND automatic
// worker count — the fully self-tuning mode). params supplies the
// per-link PHY model the automatic comparison prices lookahead with.
func choosePartition(cfg MachineConfig, torus topo.Torus, params router.Params) (topo.Partition, bool) {
	auto := cfg.Partition == "" || cfg.Partition == PartitionAuto
	workers := cfg.Workers
	adaptive := false
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > torus.Size() {
			workers = torus.Size()
		}
		adaptive = auto
	}
	switch cfg.Partition {
	case PartitionBands:
		return topo.NewBands(torus, workers), false
	case PartitionBlocks:
		return topo.NewBlocks2D(torus, workers), false
	case PartitionBoards:
		part, err := topo.NewBoards(torus, params.Boards, workers)
		if err != nil {
			panic(err) // Validate accepted the tiling
		}
		return part, false
	case PartitionCabinets:
		part, err := topo.NewCabinets(torus, params.Boards, params.Cabinets, workers)
		if err != nil {
			panic(err) // Validate accepted the tiling
		}
		return part, false
	}
	// Automatic geometry: whichever strategy reaches the requested
	// parallelism; at equal shard counts the wider lookahead wins (on a
	// heterogeneous fabric a board-aligned cut of slow links means
	// fewer window barriers, worth more than a few cut links), then the
	// smaller cut, and remaining ties keep the earlier candidate
	// (bands: at most two neighbouring shards instead of eight).
	candidates := []topo.Partition{topo.NewBands(torus, workers), topo.NewBlocks2D(torus, workers)}
	if params.Heterogeneous() {
		if boards, err := topo.NewBoards(torus, params.Boards, workers); err == nil {
			candidates = append(candidates, boards)
		}
	}
	if params.HasCabinets() {
		if cab, err := topo.NewCabinets(torus, params.Boards, params.Cabinets, workers); err == nil {
			candidates = append(candidates, cab)
		}
	}
	best := candidates[0]
	for _, cand := range candidates[1:] {
		switch {
		case cand.Shards() != best.Shards():
			if cand.Shards() > best.Shards() {
				best = cand
			}
		case params.LookaheadFor(cand) != params.LookaheadFor(best):
			if params.LookaheadFor(cand) > params.LookaheadFor(best) {
				best = cand
			}
		case cand.CutLinks() < best.CutLinks():
			best = cand
		}
	}
	return best, adaptive
}

// unit is one application core's runtime: kernel + neurons + synapses.
type unit struct {
	frag        *mapping.Fragment
	fragIdx     int // index into the routing plan's fragment list
	gen         int // build generation: index into fragUnits[fragIdx]
	slot        int // application-core slot actually occupied
	tickBase    uint64
	rng         *sim.RNG // private stream, survives migration
	core        *kernel.Core
	pop         *neural.Population
	source      *neural.PoissonSource
	dma         *chip.DMAController
	stdp        *neural.STDPState
	plasticKeys map[uint32]bool
	failed      bool
}

// chipTallies is one chip's slice of the machine-wide run accounting.
// A chip's events all execute on the shard that owns it, so no two
// goroutines ever touch the same entry inside a window, and the
// integer merges at report time (in chip-index order) are independent
// of accumulation order — the heart of the determinism contract.
// Keying by chip rather than by shard makes the tallies stable across
// runtime re-partitioning: ownership of an entry moves with the chip's
// domain, with nothing to migrate.
type chipTallies struct {
	latencies         sim.TimeStats
	writeBacks        uint64
	migrations        uint64
	migrationFailures uint64
	_                 [8]uint64 // keep neighbouring chips off each other's cache lines
}

// Chunk sizing for the lazily-materialised per-chip stores (tallies,
// activity counters): 64 chips to a chunk, matching the fabric's node
// arena, so an idle region of a large torus costs one nil pointer per
// 64 chips instead of dense state.
const (
	chipChunkBits = 6
	chipChunkSize = 1 << chipChunkBits
	chipChunkMask = chipChunkSize - 1
)

// chunked is a fixed-index array whose storage materialises chunk by
// chunk on first touch. The entry for a chip is only ever written by
// the shard that owns the chip, but chips of different shards share
// chunks, so chunk creation is atomic-pointer published under a mutex —
// the same double-checked pattern the fabric uses for its nodes.
type chunked[T any] struct {
	mu     sync.Mutex
	chunks []atomic.Pointer[[chipChunkSize]T]
}

func newChunked[T any](n int) chunked[T] {
	return chunked[T]{chunks: make([]atomic.Pointer[[chipChunkSize]T], (n+chipChunkMask)>>chipChunkBits)}
}

// at returns the entry at index i, materialising its chunk on first
// touch.
func (s *chunked[T]) at(i int) *T {
	ci := i >> chipChunkBits
	c := s.chunks[ci].Load()
	if c == nil {
		s.mu.Lock()
		if c = s.chunks[ci].Load(); c == nil {
			c = new([chipChunkSize]T)
			s.chunks[ci].Store(c)
		}
		s.mu.Unlock()
	}
	return &c[i&chipChunkMask]
}

// each visits every materialised entry in index order — untouched
// chunks hold only zero values, which every aggregation here treats as
// absent, so skipping them is exact.
func (s *chunked[T]) each(fn func(i int, v *T)) {
	for ci := range s.chunks {
		c := s.chunks[ci].Load()
		if c == nil {
			continue
		}
		base := ci << chipChunkBits
		for j := range c {
			fn(base+j, &c[j])
		}
	}
}

// Machine is a simulated SpiNNaker machine. The torus is partitioned
// into contiguous shards, each advanced by its own deterministic event
// engine; shards synchronise only at lookahead-window barriers bounded
// by the inter-chip router latency, mirroring the paper's
// bounded-asynchrony GALS argument (sections 3 and 5).
type Machine struct {
	cfg  MachineConfig
	pe   *sim.ParallelEngine
	part topo.Partition
	fab  *router.Fabric
	boot *boot.Controller

	// host is the machine's Ethernet endpoint at hostOrigin, created at
	// Boot (the image load runs through it) and shared by AttachHost.
	host       *host.Host
	hostOrigin topo.Coord

	// epoch is the simulated instant model time starts: the end of the
	// application data load. Spike rasters, tick counters and InjectSpike
	// times are all epoch-relative, so the loading phases consuming
	// simulated fabric time do not shift biological timestamps.
	epoch sim.Time

	booted bool
	loaded bool

	model *Model
	rplan *mapping.RoutingPlan
	dplan *mapping.DataPlan
	units map[topo.Coord]map[int]*unit // chip -> app core slot -> unit
	// fragUnits holds every unit ever built for each fragment, in
	// creation order (the live one last). Iterating fragments first
	// gives a deterministic order regardless of migration timing.
	fragUnits [][]*unit

	tallies chunked[chipTallies]
	bioMS   uint64

	// Runtime re-partitioning state. baseWorkers is the construction-
	// time parallelism target the auto policy re-aims for; activityAt
	// snapshots each chip domain's scheduled-event counter at the last
	// policy evaluation; repartitionUrgent forces the next evaluation
	// past the minimum-signal gate (set by FailLink and migration
	// storms); lastMigrations detects those storms.
	autoRepartition   bool
	baseWorkers       int
	activityAt        chunked[uint64]
	repartitionUrgent bool
	lastMigrations    uint64
	lastWindows       uint64
	// faultDirty flags that a scripted campaign event (link failure,
	// chip death, deferred repair) ran since the last quiescence
	// commit. Written from shard-owned campaign events, consumed by
	// commitFaults between windows — hence atomic.
	faultDirty atomic.Bool
	// deadDone tracks chips whose death has been committed at a
	// quiescence boundary (boot aliveness flipped, cores stopped), so
	// commitFaults touches each dead chip exactly once.
	deadDone map[topo.Coord]bool
	// evSpacingNS is the observed mean busy-time between window events
	// (windows x lookahead / events), a property of the trajectory — not
	// of the shard layout — that projects how many barriers a candidate
	// lookahead would pay. 0 until first observed; only multi-shard
	// stretches update it (a single shard runs windowless). Smoothed as
	// an exponentially-decaying average so one anomalous stretch (a
	// boot flood, a migration storm) cannot whipsaw the policy, while a
	// genuine workload shift still moves it within a few evaluations.
	evSpacingNS float64
	// shardEvBuf and actBuf are reused evaluation scratch (the policy
	// runs at every quiescence boundary of an ms-granular driver).
	shardEvBuf []uint64
	actBuf     []uint64
}

// evSpacingDecay weights the newest spacing observation in the
// exponentially-decaying evSpacingNS average.
const evSpacingDecay = 0.4

// MigrationDetectMS is how long the monitor's watchdog takes to notice a
// silent application core before starting a migration (abstract:
// "run-time support for functional migration and real-time fault
// mitigation").
const MigrationDetectMS = 5

// NewMachine builds a machine; Boot it before loading a model.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	torus := topo.MustTorus(cfg.Width, cfg.Height)
	params := router.DefaultParams(cfg.Width, cfg.Height)
	params.EmergencyEnabled = !cfg.DisableEmergencyRouting
	params.Boards = cfg.boardGeometry()
	if cfg.BoardLinkParams == BoardLinkUniform {
		params.BoardLink = params.Link // hierarchy without heterogeneity
	}
	params.Cabinets = cfg.cabinetGeometry()
	if cfg.CabinetLinkParams == CabinetLinkUniform {
		// Third level without extra heterogeneity: cabinet cables price
		// like board cables, so the hierarchy buys no extra lookahead.
		params.CabinetLink = params.BoardLink
	}
	part, adaptive := choosePartition(cfg, torus, params)
	pe := sim.NewParallel(cfg.Seed, part.Shards(), part.Shards())
	if cfg.EventQueue != "" {
		pe.SetEventQueue(cfg.EventQueue)
	}
	pe.SetAdaptive(adaptive)
	if cfg.SoloThresholdEvents > 0 {
		pe.SetSoloThreshold(cfg.SoloThresholdEvents)
	}
	// The lookahead folds each cut link's frame serialisation time into
	// the router pipeline latency, minimised over the partition's actual
	// boundary cut: a board-aligned cut of slow board-to-board links
	// earns wider windows and fewer barriers, with identical results.
	pe.SetLookahead(params.LookaheadFor(part))
	fab, err := router.NewShardedFabric(pe, part, params)
	if err != nil {
		pe.Close()
		return nil, err
	}
	origin, _ := cfg.hostOrigin() // Validate accepted it
	return &Machine{
		cfg:             cfg,
		pe:              pe,
		part:            part,
		fab:             fab,
		hostOrigin:      origin,
		units:           make(map[topo.Coord]map[int]*unit),
		tallies:         newChunked[chipTallies](torus.Size()),
		autoRepartition: cfg.Repartition == RepartitionAuto,
		baseWorkers:     part.Shards(),
		activityAt:      newChunked[uint64](torus.Size()),
	}, nil
}

// tallyAt returns chip c's slice of the run accounting. The index is
// the chip's torus index — stable across re-partitioning.
func (m *Machine) tallyAt(c topo.Coord) *chipTallies {
	return m.tallies.at(m.part.Torus().Index(c))
}

// InstantiatedChips reports how many chips have materialised router and
// accounting state; TorusChips is the torus address space they are
// drawn from. On an idle large machine the former stays proportional to
// the touched region while the latter is WxH — the sparse-state win.
func (m *Machine) InstantiatedChips() int { return m.fab.Instantiated() }

// TorusChips reports the total chip address space (Width x Height).
func (m *Machine) TorusChips() int { return m.fab.Size() }

// Close releases the machine's persistent worker pool. Optional — an
// abandoned machine's pool is reclaimed by a finalizer — but callers
// that churn through many machines (benchmarks, sweeps) should Close
// each one. The machine must not be running.
func (m *Machine) Close() { m.pe.Close() }

// Workers reports the effective shard count (cfg.Workers clamped to the
// granularity of the chosen partition geometry).
func (m *Machine) Workers() int { return m.part.Shards() }

// SimStats reports execution-engine statistics: the chosen partition
// geometry and its communication cost, the lookahead bound, and the
// window-barrier counts accumulated so far. These describe the
// execution strategy, not the simulation — they vary with Workers and
// Partition while RunReport stays byte-identical, which is why they
// live outside it.
type SimStats struct {
	// Geometry is the effective partition geometry ("bands", "blocks",
	// "boards", "cabinets").
	Geometry string
	// Boards is the configured board tiling ("none" = uniform fabric).
	Boards string
	// Cabinets is the configured cabinet tiling in boards per cabinet
	// ("none" = no third packaging level).
	Cabinets string
	// Shards and Workers are the effective shard count and parallelism
	// bound; Adaptive reports whether per-window worker selection is on.
	Shards   int
	Workers  int
	Adaptive bool
	// CutLinks counts directed inter-chip links crossing shard
	// boundaries — the traffic that must pass barrier mailboxes.
	// CutLinksOnBoard, CutLinksBoard and CutLinksCabinet split the cut
	// by link class; the cut is board-aligned exactly when
	// CutLinksOnBoard is zero, and cabinet-aligned when only
	// CutLinksCabinet is non-zero.
	CutLinks        int
	CutLinksOnBoard int
	CutLinksBoard   int
	CutLinksCabinet int
	// Lookahead is the achieved cross-shard latency bound: router
	// pipeline plus minimum frame serialisation over the *actual*
	// boundary cut. UniformLookahead is the bound a single shared
	// link-parameter block would allow (the machine-wide minimum hop
	// floor); on a board-aligned cut of slower board-to-board links,
	// Lookahead exceeds it — wider windows, fewer barriers.
	Lookahead        sim.Time
	UniformLookahead sim.Time
	// Windows counts lookahead windows executed; ParallelWindows those
	// dispatched to the worker pool; EventsPerWindow the mean event
	// density the adaptive mode steers by. A single-shard engine runs
	// each RunUntil span as one barrier-free window, so its counts stay
	// comparable (near-zero, as sequential execution synchronises
	// nothing) instead of reading zero events per window.
	Windows         uint64
	ParallelWindows uint64
	EventsPerWindow float64
	// Handoffs counts coordinator hand-off + barrier cycles: one per
	// ordinary window plus one per batched run of provably single-shard
	// windows, so Handoffs <= Windows and the gap is synchronisation
	// the window batching elided. BatchRuns counts those batched runs
	// and BatchedWindows the windows they covered; SoloThreshold echoes
	// the adaptive density bound in force (SoloThresholdEvents or the
	// default).
	Handoffs       uint64
	BatchRuns      uint64
	BatchedWindows uint64
	SoloThreshold  int
	// Events counts simulation events executed across all shards,
	// cumulative across re-partitionings.
	Events uint64
	// Repartitions counts completed runtime re-partitions (manual and
	// policy-driven). Geometry, Shards, CutLinks and Lookahead above
	// always describe the currently-active partition.
	Repartitions uint64
	// HostTransitions counts engine stop/start round trips by
	// sequential-mode drivers: boot-phase quiescence runs plus one per
	// host wait. Batching amortises these — N serial host commands pay N
	// transitions where one batch pays one.
	HostTransitions uint64
}

// SimStats snapshots the engine's execution statistics.
func (m *Machine) SimStats() SimStats {
	params := m.fab.Params()
	onBoard, boardCut, cabinetCut := m.part.CutComposition(params.Boards, params.Cabinets)
	return SimStats{
		Geometry:         m.part.Geometry().String(),
		Boards:           params.Boards.String(),
		Cabinets:         params.Cabinets.String(),
		Shards:           m.pe.Shards(),
		Workers:          m.pe.Workers(),
		Adaptive:         m.pe.Adaptive(),
		CutLinks:         m.part.CutLinks(),
		CutLinksOnBoard:  onBoard,
		CutLinksBoard:    boardCut,
		CutLinksCabinet:  cabinetCut,
		Lookahead:        m.pe.Lookahead(),
		UniformLookahead: params.MinHopLatency(),
		Windows:          m.pe.Windows(),
		ParallelWindows:  m.pe.ParallelWindows(),
		EventsPerWindow:  m.pe.EventsPerWindow(),
		Handoffs:         m.pe.Handoffs(),
		BatchRuns:        m.pe.BatchRuns(),
		BatchedWindows:   m.pe.BatchedWindows(),
		SoloThreshold:    m.pe.SoloThreshold(),
		Events:           m.pe.Processed(),
		Repartitions:     m.pe.Repartitions(),
		HostTransitions:  m.pe.Transitions(),
	}
}

// Runtime re-partitioning policy constants.
const (
	// repartitionMinEvents is the window-event signal below which the
	// auto policy stands pat: too little traffic to justify moving the
	// machine (FailLink and migration storms bypass the gate).
	repartitionMinEvents = 4096
	// repartitionImprove is the hysteresis: a candidate must beat the
	// active partition's projected cost by this factor to be swapped in.
	repartitionImprove = 0.9
	// repartitionBarrierCost prices one window barrier in
	// event-equivalents: the handoffs and wake-ups a barrier costs are
	// worth roughly this many executed events. Candidates trade critical
	// path against projected barriers at this rate.
	repartitionBarrierCost = 2.0
)

// buildPartition resolves an explicit geometry name and worker count
// into a partition of this machine's torus (workers 0 = the automatic
// sizing NewMachine uses).
func (m *Machine) buildPartition(geometry string, workers int) (topo.Partition, error) {
	torus := m.part.Torus()
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > torus.Size() {
			workers = torus.Size()
		}
	}
	if workers < 0 || workers > torus.Size() {
		return topo.Partition{}, fmt.Errorf("spinngo: repartition workers %d outside 0..%d",
			workers, torus.Size())
	}
	params := m.fab.Params()
	switch geometry {
	case PartitionBands:
		return topo.NewBands(torus, workers), nil
	case PartitionBlocks:
		return topo.NewBlocks2D(torus, workers), nil
	case PartitionBoards:
		if !params.Heterogeneous() {
			return topo.Partition{}, fmt.Errorf("spinngo: partition %q requires Boards", PartitionBoards)
		}
		return topo.NewBoards(torus, params.Boards, workers)
	case PartitionCabinets:
		if !params.HasCabinets() {
			return topo.Partition{}, fmt.Errorf("spinngo: partition %q requires Cabinets", PartitionCabinets)
		}
		return topo.NewCabinets(torus, params.Boards, params.Cabinets, workers)
	}
	return topo.Partition{}, fmt.Errorf("spinngo: unknown partition geometry %q (want %q, %q, %q or %q)",
		geometry, PartitionBands, PartitionBlocks, PartitionBoards, PartitionCabinets)
}

// Repartition re-shapes the machine's shard decomposition at runtime:
// every chip domain re-binds to its new owning shard engine, pending
// events migrate heap-to-heap with their canonical keys intact, and the
// engine lookahead re-prices over the new partition's *live* cut —
// failed links drop out, so a cut whose fast links have died earns the
// surviving (possibly wider) hop floor. Legal only at quiescence:
// between Run calls, never from inside a running model. Workers 0 sizes
// the shard count automatically. Re-partitioning is pure execution
// strategy — reports are byte-identical with any sequence of
// Repartition calls, or none.
func (m *Machine) Repartition(geometry string, workers int) error {
	part, err := m.buildPartition(geometry, workers)
	if err != nil {
		return err
	}
	return m.repartitionTo(part)
}

// repartitionTo swaps the active partition for part: engine first
// (domain re-binding and event migration), then the lookahead, then the
// fabric's shard ownership map. A swap to an identical chip->shard map
// at an unchanged lookahead is a no-op.
func (m *Machine) repartitionTo(part topo.Partition) error {
	la := m.fab.LiveLookaheadFor(part)
	if part.Equal(m.part) && la == m.pe.Lookahead() {
		return nil
	}
	if err := m.pe.Repartition(part.Shards(), part.Shards(), func(d int32) int {
		return part.ShardOfIndex(int(d))
	}); err != nil {
		return err
	}
	m.pe.SetLookahead(la)
	if err := m.fab.Repartition(part); err != nil {
		return err
	}
	m.part = part
	return nil
}

// repartitionCandidates enumerates the partitions the auto policy
// compares: every geometry at the construction-time parallelism target,
// at half of it, and the sequential fallback — deduplicated by their
// chip->shard maps.
func (m *Machine) repartitionCandidates() []topo.Partition {
	torus := m.part.Torus()
	params := m.fab.Params()
	targets := []int{m.baseWorkers}
	if h := m.baseWorkers / 2; h >= 2 {
		targets = append(targets, h)
	}
	targets = append(targets, 1)
	var cands []topo.Partition
	add := func(p topo.Partition) {
		for _, q := range cands {
			if q.Equal(p) {
				return
			}
		}
		cands = append(cands, p)
	}
	for _, w := range targets {
		add(topo.NewBands(torus, w))
		add(topo.NewBlocks2D(torus, w))
		if params.Heterogeneous() {
			if b, err := topo.NewBoards(torus, params.Boards, w); err == nil {
				add(b)
			}
		}
		if params.HasCabinets() {
			if cb, err := topo.NewCabinets(torus, params.Boards, params.Cabinets, w); err == nil {
				add(cb)
			}
		}
	}
	return cands
}

// projectedCost prices running the observed per-chip activity mix on a
// candidate partition, in event-equivalents: the critical path (events
// on the busiest shard — the serial bottleneck no window protocol can
// overlap past) plus the projected barrier count at the candidate's
// live lookahead la, each barrier priced at repartitionBarrierCost.
// Barriers are projected from the observed mean event spacing
// (evSpacingNS): windows ~ busy time / lookahead, so a candidate with a
// wider live cut — including a FailLinked fast cut re-priced to its
// surviving floor — pays proportionally fewer. A sequential candidate
// pays none but carries the whole load as critical path. Every input
// derives from the simulation trajectory, so the policy decides
// identically run to run.
func (m *Machine) projectedCost(part topo.Partition, act []uint64, total uint64, la sim.Time) float64 {
	perShard := make([]uint64, part.Shards())
	for i, a := range act {
		perShard[part.ShardOfIndex(i)] += a
	}
	var maxShard uint64
	for _, v := range perShard {
		if v > maxShard {
			maxShard = v
		}
	}
	cost := float64(maxShard)
	if part.Shards() > 1 && m.evSpacingNS > 0 {
		projWindows := float64(total) * m.evSpacingNS / float64(la)
		cost += repartitionBarrierCost * projWindows
	}
	return cost
}

// maybeRepartition is the auto policy's quiescence-boundary evaluation:
// it differences each chip domain's scheduled-event counter against the
// last evaluation, prices the active partition (at the engine's actual
// lookahead, which may be stale after link failures) against every
// candidate (at their live lookaheads), and swaps when the best
// candidate clears the hysteresis threshold. Evaluations are gated on a
// minimum window-event signal except after FailLink or a migration
// storm, which force a look immediately.
func (m *Machine) maybeRepartition() error {
	if !m.autoRepartition {
		return nil
	}
	var signal uint64
	m.shardEvBuf = m.pe.TakeShardEvents(m.shardEvBuf)
	for _, ev := range m.shardEvBuf {
		signal += ev
	}
	// Refresh the event-spacing estimate from the windows the last
	// stretch actually ran (only multi-shard stretches run windows
	// bounded by the lookahead; a single shard is windowless). The
	// observation folds into a decaying average rather than replacing
	// the estimate outright.
	windowsDelta := m.pe.Windows() - m.lastWindows
	m.lastWindows = m.pe.Windows()
	if m.part.Shards() > 1 && windowsDelta > 0 && signal > 0 {
		obs := float64(windowsDelta) * float64(m.pe.Lookahead()) / float64(signal)
		if m.evSpacingNS == 0 {
			m.evSpacingNS = obs
		} else {
			m.evSpacingNS = (1-evSpacingDecay)*m.evSpacingNS + evSpacingDecay*obs
		}
	}
	var migs uint64
	m.tallies.each(func(_ int, t *chipTallies) { migs += t.migrations })
	urgent := m.repartitionUrgent || migs != m.lastMigrations
	m.repartitionUrgent = false
	m.lastMigrations = migs
	if signal < repartitionMinEvents && !urgent {
		return nil
	}
	size := m.part.Torus().Size()
	if cap(m.actBuf) < size {
		m.actBuf = make([]uint64, size)
	}
	act := m.actBuf[:size]
	for i := range act {
		act[i] = 0
	}
	// Only instantiated chips have domains (and so activity); act is
	// indexed by torus index, which on a sparse machine is not the
	// node's position in the Nodes slice.
	for _, n := range m.fab.Nodes() {
		i := n.Index()
		s := n.Domain().Scheduled()
		last := m.activityAt.at(i)
		act[i] = s - *last
		*last = s
	}
	// Fold in the pending backlog per chip — the work the next windows
	// will execute, read cheaply off the calendar queues. A hotspot that
	// has queued a burst but not yet executed it shows up here one
	// evaluation earlier than in the executed-density history alone.
	m.pe.PendingByDomain(act)
	var total uint64
	for _, a := range act {
		total += a
	}
	if total == 0 {
		return nil
	}
	curCost := m.projectedCost(m.part, act, total, m.pe.Lookahead())
	best := m.part
	bestCost := curCost
	if debugRepartition {
		fmt.Printf("[repart] cur=%s/%d la=%v cost=%.0f total=%d spacing=%.1f signal=%d windows=%d\n",
			m.part.Geometry(), m.part.Shards(), m.pe.Lookahead(), curCost, total, m.evSpacingNS, signal, windowsDelta)
	}
	for _, cand := range m.repartitionCandidates() {
		c := m.projectedCost(cand, act, total, m.fab.LiveLookaheadFor(cand))
		if debugRepartition {
			fmt.Printf("[repart]   cand %s/%d la=%v cost=%.0f\n",
				cand.Geometry(), cand.Shards(), m.fab.LiveLookaheadFor(cand), c)
		}
		if c < bestCost {
			best, bestCost = cand, c
		}
	}
	if bestCost < curCost*repartitionImprove {
		return m.repartitionTo(best)
	}
	return nil
}

// debugRepartition prints the policy's evaluations (development aid).
var debugRepartition = os.Getenv("SPINNGO_DEBUG_REPARTITION") != ""

// domAt returns the scheduling domain of a chip.
func (m *Machine) domAt(c topo.Coord) *sim.Domain { return m.fab.DomainAt(c) }

// BootReport summarises the boot sequence (section 5.2).
type BootReport struct {
	Chips         int
	BootedLocally int
	Rescued       int
	DeadForever   int
	CoordCorrect  bool
	LoadTimeMS    float64
	AppCores      int
}

// hostLoadChunkBytes is the payload each fabric packet carries during
// the machine's own bulk transfers (boot image, application data) —
// SDP-style frame aggregation, standing in for the protocol's payload
// framing the way the host package's out-of-band payload table does.
// User-facing HostLink commands keep the attachment default (the
// paper's one-packet-per-32-bit-word model).
const hostLoadChunkBytes = 32

// hostLoadWindow is the in-flight command window the machine's own bulk
// loads (boot image, application data) pipeline with.
const hostLoadWindow = 8

// runBatch launches a host command batch and drives the machine under
// parallel lookahead windows until every command resolves — the engine
// halts at the exact resolution event (RunUntilAnyOf), so the machine
// state afterwards is identical for every worker count and partition
// geometry. Per-command failures stay in the batch's responses; the
// returned error is reserved for batch-level faults.
func (m *Machine) runBatch(b *host.Batch) error {
	// Commit faults from any preceding Run before launching: a batch
	// starts at sequential quiescence, and command routing must see the
	// post-campaign machine (dead gateways fail fast, lookahead is
	// already re-priced over the live cut).
	m.commitFaults()
	b.Launch()
	watch := m.fab.DomainAt(m.hostOrigin)
	for !b.Done() {
		// Every launched command resolves within its per-command timeout
		// of the Ethernet backlog clearing (completion or expiry), and
		// resolutions launch the rest of the queue, so each wait below is
		// guaranteed progress; the horizon is a backstop against
		// host-protocol bugs, not a pacing device.
		before := b.Resolved()
		if m.pe.RunUntilAnyOf(b.Horizon(), watch, b.Done) {
			break
		}
		if b.Resolved() == before {
			return fmt.Errorf("spinngo: host batch stalled with %d of %d commands resolved",
				b.Resolved(), b.Len())
		}
	}
	// Sequential quiescence: release resolved payload buffers now rather
	// than waiting for a future registration, so the last batch of a
	// bulk load does not pin the whole image.
	m.host.StripResolved()
	return nil
}

// Boot runs the section-5.2 sequence: self-test, monitor election,
// neighbour rescue, coordinate flood, p2p configuration and flood-fill
// load of the system image. The whole sequence — control phases and
// the image load alike — drains under the engine's normal parallel
// lookahead windows; only the phase setup between drains runs on the
// caller.
func (m *Machine) Boot() (*BootReport, error) {
	if m.booted {
		return nil, fmt.Errorf("spinngo: already booted")
	}
	cfg := boot.DefaultConfig()
	cfg.Cores = m.cfg.CoresPerChip
	cfg.CoreFaultProb = m.cfg.CoreFaultProb
	cfg.Seed = m.cfg.Seed
	cfg.SkipLoad = true // the image loads through the host batch below
	m.boot = boot.NewController(m.pe, m.fab, cfg)
	res, err := m.boot.Run()
	if err != nil {
		return nil, err
	}
	// The machine's Ethernet endpoint exists from here on: p2p routing
	// is configured, so any chip is reachable through the gateway.
	hcfg := host.DefaultConfig()
	hcfg.Origin = m.hostOrigin
	hcfg.Redundancy = m.cfg.FillRedundancy
	m.host = host.New(m.fab.DomainAt(m.hostOrigin), m.fab, m.boot, hcfg)
	// Flood-fill the system image: one Ethernet transfer per block,
	// every alive chip stores it (experiment E9: load time nearly
	// independent of machine size).
	b := m.host.NewBatch(hostLoadWindow)
	b.SetChunk(hostLoadChunkBytes)
	for blk := 0; blk < cfg.ImageBlocks; blk++ {
		if _, err := b.FillMem(boot.BlockAddr(uint32(blk)), boot.BlockContent(uint32(blk), cfg.BlockBytes)); err != nil {
			return nil, err
		}
	}
	loadStart := m.pe.Now()
	if err := m.runBatch(b); err != nil {
		return nil, err
	}
	for blk, r := range b.Responses() {
		if r.Err != nil {
			return nil, fmt.Errorf("spinngo: boot image load: %w", r.Err)
		}
		// The old native flood tracked per-chip load completion; the
		// batched flood certifies the same invariant through its
		// convergecast count.
		if r.Chips != m.host.FillAlive() {
			return nil, fmt.Errorf("spinngo: boot image block %d reached %d of %d alive chips",
				blk, r.Chips, m.host.FillAlive())
		}
	}
	// The batch halts at the last acknowledgement, but redundant flood
	// forwards are still draining; run them out (no tickers exist yet,
	// so quiescence is finite) rather than let boot debris contend with
	// the application load's link queues.
	m.pe.Drain()
	loadTime := m.pe.Now() - loadStart
	appCores := 0
	for _, n := range m.fab.Nodes() {
		if m.boot.Alive(n.Coord) {
			appCores += m.boot.Chip(n.Coord).AssignApplications()
		}
	}
	m.booted = true
	return &BootReport{
		Chips:         m.cfg.Width * m.cfg.Height,
		BootedLocally: res.BootedLocally,
		Rescued:       res.Rescued,
		DeadForever:   res.DeadForever,
		CoordCorrect:  res.CoordCorrect,
		LoadTimeMS:    loadTime.Millis(),
		AppCores:      appCores,
	}, nil
}

// appCoreSlots returns the application cores of a chip in slot order.
func (m *Machine) appCoreSlots(at topo.Coord) []*chip.Core {
	return m.boot.Chip(at).ApplicationCores()
}

// minAppCores finds the smallest application-core count across alive
// chips, which bounds what the mapper may use uniformly.
func (m *Machine) minAppCores() int {
	min := m.cfg.CoresPerChip
	for _, n := range m.fab.Nodes() {
		if !m.boot.Alive(n.Coord) {
			return 0 // dead chip: conservative (mapper would avoid it)
		}
		if c := len(m.appCoreSlots(n.Coord)); c < min {
			min = c
		}
	}
	return min
}

// LoadReport summarises mapping and loading.
type LoadReport struct {
	Fragments    int
	Synapses     int
	SynapseBytes int
	TableEntries int
	MaxChipTable int
	TreeLinks    int
	// LoadTimeMS is the simulated time the host spent shipping the
	// application data (synaptic images) into the machine as a
	// pipelined batch of per-core SDRAM writes.
	LoadTimeMS float64
}

// synapseImageBase is where a core slot's synaptic image lands in its
// chip's SDRAM (1 MB per application-core slot).
const synapseImageBase = 0x6000_0000

// Load compiles the model (partition, place, route, generate data),
// installs routing tables, and instantiates the event-driven runtime on
// every application core used.
func (m *Machine) Load(model *Model) (*LoadReport, error) {
	if !m.booted {
		return nil, fmt.Errorf("spinngo: boot the machine before loading")
	}
	if m.loaded {
		return nil, fmt.Errorf("spinngo: a model is already loaded")
	}
	appCores := m.minAppCores()
	if m.cfg.MaxAppCoresPerChip > 0 && m.cfg.MaxAppCoresPerChip < appCores {
		appCores = m.cfg.MaxAppCoresPerChip
	}
	spec := mapping.MachineSpec{
		Torus:             topo.MustTorus(m.cfg.Width, m.cfg.Height),
		AppCoresPerChip:   appCores,
		MaxNeuronsPerCore: m.cfg.MaxNeuronsPerCore,
		TableSize:         router.DefaultTableSize,
	}
	if spec.AppCoresPerChip == 0 {
		return nil, fmt.Errorf("spinngo: machine has dead chips; cannot map uniformly")
	}
	strategy := mapping.PlaceSerpentine
	if m.cfg.Placement == Random {
		strategy = mapping.PlaceRandom
	}
	rplan, dplan, err := mapping.Compile(model.net, spec, strategy,
		mapping.RouteOptions{ElideDefault: true, Minimise: true}, m.cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := rplan.InstallTables(m.fab); err != nil {
		return nil, err
	}
	m.model = model
	m.rplan = rplan
	m.dplan = dplan
	m.fragUnits = make([][]*unit, len(rplan.Frags))

	// Application-data load: every core's synaptic image travels through
	// the host link as one pipelined batch of SDRAM writes — the
	// loading traffic (and its time) is simulated fabric traffic, not a
	// free teleport. Fragments are visited in plan order, so the batch
	// is identical for every worker count.
	loadStart := m.pe.Now()
	lb := m.host.NewBatch(hostLoadWindow)
	lb.SetChunk(hostLoadChunkBytes)
	for _, f := range rplan.Frags {
		cd := dplan.Cores[f.Chip][f.Core]
		if cd == nil || cd.Matrix.Bytes == 0 {
			continue
		}
		// The image content stands in for the serialised rows already
		// held by the in-memory Matrix; what the transfer prices is the
		// bytes moved and the time they take.
		lb.WriteMem(f.Chip, synapseImageBase+uint32(f.Core)<<20, make([]byte, cd.Matrix.Bytes))
	}
	if err := m.runBatch(lb); err != nil {
		return nil, err
	}
	for _, r := range lb.Responses() {
		if r.Err != nil {
			return nil, fmt.Errorf("spinngo: application data load: %w", r.Err)
		}
	}
	// Drain straggler load traffic before the model starts (no tickers
	// yet), so the run begins on a quiet fabric from a quiescent instant.
	m.pe.Drain()
	loadTime := m.pe.Now() - loadStart
	// Model time starts here: spike ticks, rasters and InjectSpike times
	// are measured from the end of loading.
	m.epoch = m.pe.Now()

	for i, f := range rplan.Frags {
		// Each fragment gets a private random stream forked from the
		// control RNG in fragment order, so its draws (timer phase,
		// Poisson stimulus, migration restarts) are identical for every
		// worker count and never touch the control stream at run time.
		if _, err := m.buildUnitAt(f, i, f.Core, 0, m.pe.RNG().Fork()); err != nil {
			return nil, err
		}
	}

	// Deliver multicast packets to the right unit's kernel. This runs
	// on the destination chip's shard, so it may only touch that
	// shard's tally slice and the chip's own unit.
	m.fab.OnDeliverMC = func(n *router.Node, coreSlot int, pkt packet.Packet, lat sim.Time) {
		m.tallies.at(n.Index()).latencies.Add(lat)
		if chipUnits := m.units[n.Coord]; chipUnits != nil {
			if u := chipUnits[coreSlot]; u != nil {
				u.core.PostPacket(pkt)
			}
		}
	}
	m.loaded = true
	return &LoadReport{
		Fragments:    len(rplan.Frags),
		Synapses:     dplan.TotalSynapses,
		SynapseBytes: dplan.TotalBytes,
		TableEntries: rplan.Stats.EntriesFinal,
		MaxChipTable: rplan.Stats.MaxChipTable,
		TreeLinks:    rplan.Stats.TreeLinks,
		LoadTimeMS:   loadTime.Millis(),
	}, nil
}

// buildUnitAt instantiates the Fig-7 runtime for one fragment on a given
// application-core slot. tickBase aligns the new unit's clock with
// machine time (non-zero when a migration resumes a fragment mid-run);
// rng is the fragment's private stream.
func (m *Machine) buildUnitAt(f *mapping.Fragment, fragIdx, slot int, tickBase uint64, rng *sim.RNG) (*unit, error) {
	slots := m.appCoreSlots(f.Chip)
	if slot >= len(slots) {
		return nil, fmt.Errorf("spinngo: chip %v has no application core slot %d", f.Chip, slot)
	}
	hw := slots[slot]
	dom := m.domAt(f.Chip)
	gen := len(m.fragUnits[fragIdx])
	u := &unit{
		frag:     f,
		fragIdx:  fragIdx,
		gen:      gen,
		slot:     slot,
		tickBase: tickBase,
		rng:      rng,
		dma:      hw.DMA,
		core: kernel.NewCore(dom, kernel.Config{
			MIPS: m.cfg.CoreMIPS, TimerPeriod: sim.Millisecond, DispatchOverhead: 100,
		}),
	}
	// Snapshot identity: the kernel stamps its pending events with
	// (fragment, generation) so a restore can resolve them back to this
	// unit on any partition geometry.
	u.core.SetSnapshotTag(uint64(fragIdx), uint64(gen))
	// Closure-free DMA wiring: completions post the DMA-done interrupt
	// by tag, and snapshot descriptors are built only when a snapshot
	// asks — so the per-spike fetch enqueues allocate nothing.
	u.dma.OnDone = u.core.PostDMADone
	u.dma.DescFor = func(req chip.DMARequest) *sim.Desc {
		kind := "dma.row"
		if req.Write {
			kind = "dma.wb"
		}
		return &sim.Desc{Kind: kind, Args: []uint64{uint64(fragIdx), uint64(gen), uint64(req.Tag)}}
	}
	cd := m.dplan.Cores[f.Chip][f.Core]

	pop := f.Pop
	switch pop.Kind {
	case mapping.ModelPoisson:
		u.source = neural.NewPoissonSource(rng.Fork(), f.Size(), pop.RateHz)
		u.pop = neural.NewPopulation(f.Size(), neural.MaxSynDelay,
			func(int) neural.Neuron { return nil })
	case mapping.ModelIzhikevich:
		u.pop = neural.NewIzhikevichPopulation(f.Size(), neural.MaxSynDelay, pop.Izh)
	default:
		u.pop = neural.NewLIFPopulation(f.Size(), neural.MaxSynDelay, pop.LIF)
	}
	u.pop.Bias = neural.F(pop.BiasNA)
	u.pop.SeedTick(tickBase)
	if cd != nil {
		u.pop.Matrix = cd.Matrix
		if cd.STDP != nil {
			u.stdp = neural.NewSTDPState(f.Size(), *cd.STDP)
			u.plasticKeys = cd.PlasticKeys
		}
	}

	tally := m.tallyAt(f.Chip)

	// AER out: a firing neuron becomes a multicast packet (section 4),
	// and plastic populations record the post spike for deferred STDP.
	chipCoord := f.Chip
	u.pop.OnSpike = func(local int) {
		if u.stdp != nil {
			u.stdp.RecordPost(local, u.pop.Tick())
		}
		m.fab.InjectMC(chipCoord, packet.NewMC(u.frag.Key()|uint32(local)))
	}

	// Fig-7 task 1: packet received -> schedule the synaptic-row DMA.
	u.core.On(kernel.EvPacket, func(ev kernel.Event) uint64 {
		row, ok := u.pop.Matrix.Row(ev.Pkt.Key)
		if !ok {
			return 60 // no synapses here for that neuron
		}
		u.dma.Enqueue(chip.DMARequest{Size: row.SizeBytes(), Tag: ev.Pkt.Key})
		return 80
	})
	// Fig-7 task 2: DMA complete -> process the row into the ring;
	// plastic rows first get their deferred STDP update, and modified
	// rows are written back to SDRAM by a further DMA ("if the
	// connectivity data is modified, a DMA must be scheduled to write
	// the changes back", section 5.3).
	u.core.On(kernel.EvDMADone, func(ev kernel.Event) uint64 {
		row, ok := u.pop.Matrix.Row(ev.Tag)
		if !ok {
			return 20
		}
		var cost uint64
		if u.stdp != nil && u.plasticKeys[ev.Tag] {
			dirty, c := u.stdp.ProcessRow(ev.Tag, row, u.pop.Tick())
			cost += c
			if dirty {
				tally.writeBacks++
				u.dma.Enqueue(chip.DMARequest{Size: row.SizeBytes(), Write: true, Tag: ev.Tag})
			}
		}
		return cost + u.pop.ProcessRow(row)
	})
	// Fig-7 task 3: millisecond timer -> neuron update (plus stimulus
	// generation for Poisson units).
	u.core.On(kernel.EvTimer, func(ev kernel.Event) uint64 {
		if u.source != nil {
			var cost uint64 = 40
			for _, idx := range u.source.Tick() {
				u.pop.Rec.Record(u.tickBase+ev.Tick+1, idx)
				m.fab.InjectMC(chipCoord, packet.NewMC(u.frag.Key()|uint32(idx)))
				cost += 30
			}
			return cost
		}
		return u.pop.StepTick()
	})

	if m.units[f.Chip] == nil {
		m.units[f.Chip] = make(map[int]*unit)
	}
	m.units[f.Chip][slot] = u
	m.fragUnits[fragIdx] = append(m.fragUnits[fragIdx], u)

	// Start the free-running local timer with a sub-millisecond phase
	// offset: there is no global synchronisation (section 3.1).
	dom.AfterD(sim.Time(rng.Intn(int(sim.Millisecond))),
		&sim.Desc{Kind: "machine.corestart", Args: []uint64{uint64(fragIdx), uint64(gen)}},
		u.core.Start)
	return u, nil
}

// eachUnit visits every unit ever built, fragments first then creation
// order within a fragment — a deterministic order independent of when
// migrations happened to run.
func (m *Machine) eachUnit(fn func(u *unit)) {
	for _, us := range m.fragUnits {
		for _, u := range us {
			fn(u)
		}
	}
}

// unitOf finds the live unit running a fragment.
func (m *Machine) unitOf(frag *mapping.Fragment) *unit {
	for _, u := range m.units[frag.Chip] {
		if u.frag == frag && !u.failed {
			return u
		}
	}
	return nil
}

// FailCoreOf kills the application core simulating neuron idx of
// population p, as a hardware fault would. The chip's monitor processor
// notices the silence after MigrationDetectMS and performs a functional
// migration: the fragment is rebuilt on a spare application core, its
// synaptic matrix re-read from SDRAM, and the chip's multicast routing
// entries repointed at the new core. Membrane state is lost (as on the
// real machine without checkpointing); spikes in flight during the
// outage are dropped at the dead core.
func (m *Machine) FailCoreOf(p Pop, idx int) error {
	if !m.loaded {
		return fmt.Errorf("spinngo: no model loaded")
	}
	pop := m.model.net.Pops[p.idx]
	frag, err := mapping.FragmentForNeuron(m.rplan.Frags, pop, idx)
	if err != nil {
		return err
	}
	u := m.unitOf(frag)
	if u == nil {
		return fmt.Errorf("spinngo: fragment of %q neuron %d has no live core", p.Name(), idx)
	}
	u.failed = true
	u.core.Stop()
	delete(m.units[frag.Chip], u.slot)
	m.domAt(frag.Chip).AfterD(MigrationDetectMS*sim.Millisecond,
		&sim.Desc{Kind: "machine.migrate", Args: []uint64{uint64(u.fragIdx), uint64(u.gen)}},
		func() { m.migrate(u) })
	return nil
}

// migrate moves a failed unit's fragment onto a spare core of the same
// chip. It runs as an event on the chip's shard, so all state it
// touches (the chip's unit map, its fragment's unit list, its chip's
// tallies, its private RNG) is owned by that shard's goroutine.
func (m *Machine) migrate(old *unit) {
	chipCoord := old.frag.Chip
	tally := m.tallyAt(chipCoord)
	slots := m.appCoreSlots(chipCoord)
	spare := -1
	for s := 0; s < len(slots); s++ {
		if s == old.slot {
			continue // the dead core itself
		}
		if _, used := m.units[chipCoord][s]; !used {
			spare = s
			break
		}
	}
	if spare < 0 {
		tally.migrationFailures++
		return
	}
	// Re-reading the synaptic matrix from SDRAM takes real time; the
	// fragment resumes only after the copy completes.
	bytes := old.pop.Matrix.Bytes
	m.boot.Chip(chipCoord).SDRAM.TransferD(bytes,
		&sim.Desc{Kind: "machine.migrated", Args: []uint64{uint64(old.fragIdx), uint64(old.gen), uint64(spare)}},
		func() { m.finishMigrate(old, spare) })
}

// finishMigrate completes a migration once the SDRAM copy lands: the
// fragment is rebuilt on the chosen spare slot with its clock re-aligned
// to machine time. Runs as the copy's completion event, on the chip's
// shard.
func (m *Machine) finishMigrate(old *unit, spare int) {
	chipCoord := old.frag.Chip
	tally := m.tallyAt(chipCoord)
	dom := m.domAt(chipCoord)
	nu, err := m.buildUnitAt(old.frag, old.fragIdx, spare,
		uint64((dom.Now()-m.epoch)/sim.Millisecond), old.rng)
	if err != nil {
		tally.migrationFailures++
		return
	}
	// Repoint the chip's multicast routing at the slot the rebuilt
	// unit actually landed on: readers that resolve the fragment
	// (Spikes, MeanWeightNA, KillNeuron via unitOf) see the
	// migrated core from here on.
	m.fab.Node(chipCoord).Table.RewriteCore(old.slot, nu.slot)
	tally.migrations++
}

// Run advances the machine by ms milliseconds of biological time —
// executing shards in parallel lookahead windows — and returns the
// cumulative report.
func (m *Machine) Run(ms int) (*RunReport, error) {
	if !m.loaded {
		return nil, fmt.Errorf("spinngo: load a model before running")
	}
	if ms <= 0 {
		return nil, fmt.Errorf("spinngo: non-positive run length")
	}
	// Quiescence boundary: the auto policy may re-shape the partition
	// before the next parallel stretch.
	if err := m.maybeRepartition(); err != nil {
		return nil, err
	}
	m.bioMS += uint64(ms)
	m.pe.RunUntil(m.pe.Now() + sim.Time(ms)*sim.Millisecond)
	// Quiescence boundary: commit any scripted faults the windows above
	// injected — chip deaths reach boot/cores, deferred repairs land,
	// the lookahead re-prices.
	m.commitFaults()
	return m.report(), nil
}

// Stop halts all application cores (their timers stop ticking).
func (m *Machine) Stop() {
	m.eachUnit(func(u *unit) { u.core.Stop() })
}

// Spike is one recorded firing, in population-global coordinates.
type Spike struct {
	TimeMS uint64
	Neuron int
}

// Spikes returns the recorded raster of a population, merged across its
// fragments, sorted by fragment then time.
func (m *Machine) Spikes(p Pop) []Spike {
	var out []Spike
	m.eachUnit(func(u *unit) {
		if u.frag.Pop != m.model.net.Pops[p.idx] {
			return
		}
		for _, s := range u.pop.Rec.Spikes {
			out = append(out, Spike{TimeMS: s.Tick, Neuron: u.frag.Lo + s.Neuron})
		}
	})
	return out
}

// MeanRateHz reports a population's mean firing rate over the run so
// far.
func (m *Machine) MeanRateHz(p Pop) float64 {
	if m.bioMS == 0 {
		return 0
	}
	total := len(m.Spikes(p))
	n := p.Size()
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n) / (float64(m.bioMS) / 1000)
}

// parseDir resolves a direction name ("E", "NE", "N", "W", "SW", "S").
func parseDir(dir string) (topo.Dir, error) {
	for d := topo.Dir(0); int(d) < topo.NumDirs; d++ {
		if d.String() == dir {
			return d, nil
		}
	}
	return 0, fmt.Errorf("spinngo: unknown direction %q", dir)
}

// checkChip bounds-checks a chip coordinate against the torus.
func (m *Machine) checkChip(x, y int) (topo.Coord, error) {
	if x < 0 || x >= m.cfg.Width || y < 0 || y >= m.cfg.Height {
		return topo.Coord{}, fmt.Errorf("spinngo: chip (%d,%d) outside the %dx%d machine",
			x, y, m.cfg.Width, m.cfg.Height)
	}
	return topo.Coord{X: x, Y: y}, nil
}

// FailLink kills both directions of the link leaving chip (x, y) in the
// given direction ("E", "NE", "N", "W", "SW", "S") — the fault-injection
// hook for the emergency-routing experiments.
func (m *Machine) FailLink(x, y int, dir string) error {
	d, err := parseDir(dir)
	if err != nil {
		return err
	}
	c, err := m.checkChip(x, y)
	if err != nil {
		return err
	}
	m.fab.FailLinkPair(c, d)
	// A dead link re-shapes the live cut; the auto policy takes
	// an immediate look at the next quiescence boundary.
	m.repartitionUrgent = true
	return nil
}

// FailChip kills chip (x, y) outright at the current quiescent instant:
// the node stops routing, frames queued on its links die, the
// neighbours' reverse links seal, host commands targeting it fail, and
// its application cores fall silent. Idempotent; permanent — RepairLink
// never resurrects a dead chip's links. For a death scripted inside a
// run use ScheduleFailChip, which injects it as a canonical-ordered
// event instead.
func (m *Machine) FailChip(x, y int) error {
	if !m.booted {
		return fmt.Errorf("spinngo: boot the machine before injecting faults")
	}
	c, err := m.checkChip(x, y)
	if err != nil {
		return err
	}
	m.fab.FailChip(c)
	torus := m.part.Torus()
	for d := topo.Dir(0); int(d) < topo.NumDirs; d++ {
		m.fab.FailLink(torus.Neighbor(c, d), d.Opposite())
	}
	m.commitFaults()
	return nil
}

// DeadChips lists chips killed by FailChip (direct or campaign), in
// torus-index order.
func (m *Machine) DeadChips() []topo.Coord { return m.fab.DeadChips() }

// AliveChips counts chips the boot controller holds alive — booted
// chips that no fault campaign has killed. 0 before Boot.
func (m *Machine) AliveChips() int {
	if !m.booted {
		return 0
	}
	return m.boot.AliveChips()
}

// Campaign event kinds: scripted faults ride the same canonical event
// path as injected spikes, so a campaign is byte-identical across every
// worker count and partition geometry, and pending campaign events
// survive snapshot/restore like any other descriptor-carrying event.
// Each event mutates only state owned by the domain it is scheduled on:
// a link failure runs on the chip owning the link's transmit side, a
// chip death on the dying chip itself (the neighbours' reverse links
// seal through their own same-instant events).
const (
	campaignFailLink   = "campaign.faillink"   // args: x, y, dir
	campaignFailChip   = "campaign.failchip"   // args: x, y
	campaignRepairLink = "campaign.repairlink" // args: x, y, dir
)

// campaignEventFn re-creates the closure of a campaign event from its
// descriptor — shared by arming and snapshot restore.
func (m *Machine) campaignEventFn(kind string, args []uint64) (func(), error) {
	wantArgs := 3
	if kind == campaignFailChip {
		wantArgs = 2
	}
	if len(args) != wantArgs {
		return nil, fmt.Errorf("spinngo: %s expects %d args, got %d", kind, wantArgs, len(args))
	}
	c, err := m.checkChip(int(args[0]), int(args[1]))
	if err != nil {
		return nil, err
	}
	var d topo.Dir
	if wantArgs == 3 {
		if args[2] >= uint64(topo.NumDirs) {
			return nil, fmt.Errorf("spinngo: %s direction %d out of range", kind, args[2])
		}
		d = topo.Dir(args[2])
	}
	switch kind {
	case campaignFailLink:
		return func() { m.fab.FailLink(c, d); m.faultDirty.Store(true) }, nil
	case campaignFailChip:
		return func() { m.fab.FailChip(c); m.faultDirty.Store(true) }, nil
	case campaignRepairLink:
		return func() { m.fab.DeferRepairLink(c, d); m.faultDirty.Store(true) }, nil
	default:
		return nil, fmt.Errorf("spinngo: unknown campaign event kind %q", kind)
	}
}

// armCampaign schedules one campaign event on the owning chip's domain
// at biological time atMS (epoch-relative, like InjectSpike).
func (m *Machine) armCampaign(atMS int, kind string, args ...uint64) error {
	if !m.loaded {
		return fmt.Errorf("spinngo: load a model before scripting a campaign")
	}
	fn, err := m.campaignEventFn(kind, args)
	if err != nil {
		return err
	}
	dom := m.domAt(topo.Coord{X: int(args[0]), Y: int(args[1])})
	at := m.epoch + sim.Time(atMS)*sim.Millisecond
	if at < dom.Now() {
		return fmt.Errorf("spinngo: campaign time %dms is in the past", atMS)
	}
	dom.AtD(at, &sim.Desc{Kind: kind, Args: args}, fn)
	return nil
}

// ScheduleFailLink scripts a FailLink at biological time atMS: both
// directions fail, each through an event on the chip that owns it.
func (m *Machine) ScheduleFailLink(atMS, x, y int, dir string) error {
	d, err := parseDir(dir)
	if err != nil {
		return err
	}
	c, err := m.checkChip(x, y)
	if err != nil {
		return err
	}
	nb := m.part.Torus().Neighbor(c, d)
	if err := m.armCampaign(atMS, campaignFailLink, uint64(x), uint64(y), uint64(d)); err != nil {
		return err
	}
	return m.armCampaign(atMS, campaignFailLink, uint64(nb.X), uint64(nb.Y), uint64(d.Opposite()))
}

// ScheduleRepairLink scripts the repair of both directions of a link at
// biological time atMS. The repair defers to the quiescence boundary
// ending the Run call it lands in — a link coming back mid-window could
// tighten the true cross-shard latency below the engine's committed
// lookahead — so drivers wanting prompt repairs chunk their Run calls
// at repair times (the workload runner does).
func (m *Machine) ScheduleRepairLink(atMS, x, y int, dir string) error {
	d, err := parseDir(dir)
	if err != nil {
		return err
	}
	c, err := m.checkChip(x, y)
	if err != nil {
		return err
	}
	nb := m.part.Torus().Neighbor(c, d)
	if err := m.armCampaign(atMS, campaignRepairLink, uint64(x), uint64(y), uint64(d)); err != nil {
		return err
	}
	return m.armCampaign(atMS, campaignRepairLink, uint64(nb.X), uint64(nb.Y), uint64(d.Opposite()))
}

// ScheduleFailChip scripts a chip death at biological time atMS: the
// chip's own event kills its router and purges its queues, and six
// same-instant events on the neighbours seal their reverse links.
func (m *Machine) ScheduleFailChip(atMS, x, y int) error {
	c, err := m.checkChip(x, y)
	if err != nil {
		return err
	}
	if err := m.armCampaign(atMS, campaignFailChip, uint64(x), uint64(y)); err != nil {
		return err
	}
	torus := m.part.Torus()
	for d := topo.Dir(0); int(d) < topo.NumDirs; d++ {
		nb := torus.Neighbor(c, d)
		if err := m.armCampaign(atMS, campaignFailLink,
			uint64(nb.X), uint64(nb.Y), uint64(d.Opposite())); err != nil {
			return err
		}
	}
	return nil
}

// commitFaults is the sequential-quiescence half of the fault pipeline:
// campaign events (running inside parallel windows) only flip
// shard-owned fabric state; here — between windows — chip deaths
// propagate to boot aliveness and application cores, deferred link
// repairs commit, and the engine lookahead re-prices over the live cut.
// Idempotent per fault.
func (m *Machine) commitFaults() {
	dirty := m.faultDirty.Swap(false)
	if m.fab.TakeDeadDirty() {
		if m.syncDeadChips() {
			dirty = true
		}
	}
	repaired := m.fab.CommitRepairs()
	if dirty || repaired {
		// Failures widen the live cut's hop floor, repairs tighten it;
		// either way this quiescent instant is the safe place to re-aim
		// the window bound, and the auto policy should take a fresh look.
		m.pe.SetLookahead(m.fab.LiveLookaheadFor(m.part))
		m.repartitionUrgent = true
	}
}

// syncDeadChips propagates fabric-level chip deaths to the boot
// aliveness map and the dead chips' application cores, once per chip.
// Also called directly after a snapshot restore, where the fabric
// overlay brings in dead chips whose machine-level commit must be
// re-established. Reports whether any new death was committed.
func (m *Machine) syncDeadChips() bool {
	any := false
	for _, c := range m.fab.DeadChips() {
		if m.deadDone[c] {
			continue
		}
		if m.deadDone == nil {
			m.deadDone = make(map[topo.Coord]bool)
		}
		m.deadDone[c] = true
		m.boot.KillChip(c)
		// The chip's application cores die with it: stop the timers
		// and mark the units failed, exactly as FailCoreOf does — but
		// with no migration, since every spare on the chip died too.
		// Recorded spikes up to the death instant stay in the raster.
		for slot, u := range m.units[c] {
			u.failed = true
			u.core.Stop()
			delete(m.units[c], slot)
		}
		any = true
	}
	return any
}

// InjectSpike forces neuron idx of population p to emit a spike at
// biological time atMS — measured, like the spike raster, from the end
// of loading (must be in the future).
func (m *Machine) InjectSpike(p Pop, idx int, atMS int) error {
	pop := m.model.net.Pops[p.idx]
	frag, err := mapping.FragmentForNeuron(m.rplan.Frags, pop, idx)
	if err != nil {
		return err
	}
	dom := m.domAt(frag.Chip)
	at := m.epoch + sim.Time(atMS)*sim.Millisecond
	if at < dom.Now() {
		return fmt.Errorf("spinngo: injection time %dms is in the past", atMS)
	}
	key := frag.KeyFor(idx)
	dom.AtD(at,
		&sim.Desc{Kind: "machine.injectmc", Args: []uint64{uint64(frag.Chip.X), uint64(frag.Chip.Y), uint64(key)}},
		func() {
			m.fab.InjectMC(frag.Chip, packet.NewMC(key))
		})
	return nil
}

// MeanWeightNA reports the average synaptic weight (nA) across all rows
// targeting population p — the observable for plasticity experiments.
func (m *Machine) MeanWeightNA(p Pop) float64 {
	pop := m.model.net.Pops[p.idx]
	var sum float64
	var n int
	m.eachUnit(func(u *unit) {
		if u.frag.Pop != pop || u.failed {
			return
		}
		for _, key := range u.pop.Matrix.Keys() {
			row, _ := u.pop.Matrix.Row(key)
			for _, syn := range row {
				sum += float64(syn.Weight()) / 256
				n++
			}
		}
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// KillNeuron permanently disables neuron idx of population p (the
// biological fault-tolerance experiment of section 5.4). It resolves
// the fragment's live unit, so it keeps working after a functional
// migration has moved the fragment off its original core slot (the old
// slot lookup dereferenced a deleted map entry and panicked).
func (m *Machine) KillNeuron(p Pop, idx int) error {
	pop := m.model.net.Pops[p.idx]
	frag, err := mapping.FragmentForNeuron(m.rplan.Frags, pop, idx)
	if err != nil {
		return err
	}
	u := m.unitOf(frag)
	if u == nil {
		return fmt.Errorf("spinngo: fragment of %q neuron %d has no live core", p.Name(), idx)
	}
	return u.pop.KillNeuron(idx - frag.Lo)
}

package spinngo

import (
	"testing"

	"spinngo/internal/workload"
)

// The heavyweight campaign conformance suite lives in campaign_test.go;
// these tests cover the registry-to-machine plumbing itself.

func TestWorkloadChunks(t *testing.T) {
	wl := &workload.Workload{Run: workload.Run{BioMS: 40, ChunkMS: 10}}
	if got := WorkloadChunks(wl); len(got) != 4 || got[0] != 10 || got[3] != 10 {
		t.Fatalf("chunks = %v, want [10 10 10 10]", got)
	}
	wl.Run = workload.Run{BioMS: 10, ChunkMS: 7}
	if got := WorkloadChunks(wl); len(got) != 2 || got[0] != 7 || got[1] != 3 {
		t.Fatalf("chunks = %v, want [7 3]", got)
	}
	wl.Run = workload.Run{BioMS: 25}
	if got := WorkloadChunks(wl); len(got) != 1 || got[0] != 25 {
		t.Fatalf("chunks = %v, want [25]", got)
	}
}

// TestWorkloadRegistryRuns drives one registry document end to end: the
// retina workload's scripted spikes must fan out into V1 activity.
func TestWorkloadRegistryRuns(t *testing.T) {
	wl, err := workload.Get("rank-order-retina")
	if err != nil {
		t.Fatal(err)
	}
	m, rep, err := RunWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if rep.BioTimeMS != uint64(wl.Run.BioMS) {
		t.Fatalf("ran %dms, want %dms", rep.BioTimeMS, wl.Run.BioMS)
	}
	if rep.TotalSpikes == 0 {
		t.Fatal("retina workload produced no spikes")
	}
}

// TestWorkloadModelRejects pins that a projection naming an undeclared
// population dies in validation, before any machine is built.
func TestWorkloadModelRejects(t *testing.T) {
	_, err := workload.Parse([]byte(`{
	  "schema": 1, "name": "t",
	  "machine": {"width": 2, "height": 2},
	  "populations": [{"name": "a", "kind": "lif", "size": 4}],
	  "projections": [{"from": "a", "to": "ghost", "rule": "all", "weight_na": 1}],
	  "run": {"bio_ms": 5}
	}`))
	if err == nil {
		t.Fatal("projection to undeclared population accepted")
	}
}

package spinngo

import (
	"fmt"

	"spinngo/internal/host"
	"spinngo/internal/sim"
	"spinngo/internal/topo"
)

// HostLink is the Host System of paper Fig 1 attached to the machine: an
// Ethernet connection to chip (0,0) through which any chip can be
// reached with point-to-point packet bursts (section 5.2). Operations
// are synchronous from the caller's perspective; each one advances the
// machine's simulated clock by the time the command genuinely takes
// (Ethernet + fabric + response), so host traffic and neural traffic
// share the machine honestly.
type HostLink struct {
	m *Machine
	h *host.Host
}

// AttachHost connects a host to a booted machine.
func (m *Machine) AttachHost() (*HostLink, error) {
	if !m.booted {
		return nil, fmt.Errorf("spinngo: boot the machine before attaching a host")
	}
	origin := topo.Coord{X: 0, Y: 0}
	return &HostLink{m: m, h: host.New(m.fab.DomainAt(origin), m.fab, m.boot, host.DefaultConfig())}, nil
}

// hostOpTimeout bounds how long a command may take before the link
// reports it lost.
const hostOpTimeout = 100 * sim.Millisecond

// await runs the machine until the response arrives or times out. Host
// commands step the engine in deterministic sequential mode: the host
// controller keeps cross-chip state, and commands are interactive
// control-plane traffic, not the bulk-run hot path.
//
// The deadline is enforced by peeking the next pending timestamp before
// executing anything: an event beyond the deadline is left queued, the
// clocks advance to exactly the timeout instant, and the command is
// reported lost. (Testing the clock *after* stepping — the old bug —
// executed the globally-earliest event however far past the deadline it
// lay, e.g. the next neural tick after a long quiet gap, silently
// advancing every shard clock past the timeout before the abort fired.)
// On exit the shard clocks are re-synchronised (so later relative
// scheduling does not depend on the shard layout) and a timed-out
// command is aborted (so its stray packets cannot touch host state from
// inside a later parallel run).
func (hl *HostLink) await(seq uint32, done *bool) error {
	deadline := hl.m.pe.Now() + hostOpTimeout
	for !*done {
		next, ok := hl.m.pe.NextEventAt()
		if !ok || next > deadline {
			// Queue drained, or nothing more can happen before the
			// deadline: the command is lost. Events beyond the deadline
			// stay queued for the next run phase.
			break
		}
		hl.m.pe.Step()
	}
	hl.m.pe.SyncClocks()
	if !*done {
		// The host genuinely waited the whole timeout: account for it.
		hl.m.pe.AdvanceTo(deadline)
		hl.h.Abort(seq)
		return fmt.Errorf("spinngo: host command timed out")
	}
	return nil
}

// Ping checks chip (x, y) responds, returning the round-trip time in
// microseconds.
func (hl *HostLink) Ping(x, y int) (rttUS float64, err error) {
	start := hl.m.pe.Now()
	done := false
	seq := hl.h.Ping(topo.Coord{X: x, Y: y}, func(r host.Response) {
		err = r.Err
		done = true
	})
	if werr := hl.await(seq, &done); werr != nil {
		return 0, werr
	}
	return (hl.m.pe.Now() - start).Micros(), err
}

// WriteMem stores data into chip (x, y)'s SDRAM at addr.
func (hl *HostLink) WriteMem(x, y int, addr uint32, data []byte) error {
	done := false
	var opErr error
	seq := hl.h.WriteMem(topo.Coord{X: x, Y: y}, addr, data, func(r host.Response) {
		opErr = r.Err
		done = true
	})
	if err := hl.await(seq, &done); err != nil {
		return err
	}
	return opErr
}

// ReadMem fetches n bytes from chip (x, y)'s SDRAM at addr.
func (hl *HostLink) ReadMem(x, y int, addr uint32, n int) ([]byte, error) {
	done := false
	var opErr error
	var data []byte
	seq := hl.h.ReadMem(topo.Coord{X: x, Y: y}, addr, n, func(r host.Response) {
		opErr = r.Err
		data = r.Data
		done = true
	})
	if err := hl.await(seq, &done); err != nil {
		return nil, err
	}
	return data, opErr
}

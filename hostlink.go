package spinngo

import (
	"fmt"
	"time"

	"spinngo/internal/host"
	"spinngo/internal/sim"
	"spinngo/internal/topo"
)

// HostLink is the Host System of paper Fig 1 attached to the machine: an
// Ethernet connection to the gateway chip (MachineConfig.HostOrigin,
// (0,0) by default) through which any chip can be reached with
// point-to-point packet bursts (section 5.2). Operations are synchronous
// from the caller's perspective; each one advances the machine's
// simulated clock by the time the command genuinely takes (Ethernet +
// fabric + response), so host traffic and neural traffic share the
// machine honestly.
//
// Commands run under the machine's parallel engine with normal PDES
// lookahead windows — the engine halts at the exact event that resolves
// the wait, so the machine state a command leaves behind is identical
// for every worker count. Single commands are one-command batches;
// Batch pipelines many commands with a bounded in-flight window, which
// is how bulk loading amortises the per-command engine stop/start and
// Ethernet round trips (see FillMem for the flood-fill bulk write).
type HostLink struct {
	m *Machine
	h *host.Host
}

// AttachHost connects a host to a booted machine at the configured
// gateway chip. The underlying host endpoint is shared machine-wide:
// attaching twice returns links to the same endpoint.
func (m *Machine) AttachHost() (*HostLink, error) {
	if !m.booted {
		return nil, fmt.Errorf("spinngo: boot the machine before attaching a host")
	}
	return &HostLink{m: m, h: m.host}, nil
}

// hostOpTimeout bounds how long a command may take before the link
// reports it lost.
const hostOpTimeout = host.DefaultTimeout

// Sentinel command failures, testable with errors.Is.
var (
	// ErrHostTimeout marks a command resolved by its deadline; a
	// timed-out FillMem still reports its partial coverage in
	// Result.Chips.
	ErrHostTimeout = host.ErrTimeout
	// ErrHostUnreachable marks a command that could not reach any chip,
	// reported synchronously without burning the timeout.
	ErrHostUnreachable = host.ErrUnreachable
)

// Result is the outcome of one pipelined command.
type Result struct {
	// Data carries read results.
	Data []byte
	// Chips counts chips that acknowledged a flood-fill write.
	Chips int
	// RTTUS is the command's issue-to-completion time in microseconds.
	RTTUS float64
	// Err is the per-command failure (a timed-out command reports here
	// while the rest of its batch completes normally).
	Err error
}

// Pipeline builds an ordered batch of host commands issued with a
// bounded in-flight window. Commands are appended with the builder
// methods and issued by Run; each command's result lands at the index
// its builder call returned.
type Pipeline struct {
	hl  *HostLink
	b   *host.Batch
	err error
}

// Batch starts a command pipeline with the given in-flight window — how
// many commands may be outstanding at once (values below 1 mean 1, the
// sequential-issue ablation: each command launches at the exact instant
// the previous one resolves, byte-identical to issuing them one at a
// time).
func (hl *HostLink) Batch(window int) *Pipeline {
	return &Pipeline{hl: hl, b: hl.h.NewBatch(window)}
}

// Timeout overrides the per-command deadline (default 100 ms of
// simulated time).
func (p *Pipeline) Timeout(d time.Duration) *Pipeline {
	p.b.SetTimeout(sim.Time(d.Nanoseconds()))
	return p
}

// Ping appends a liveness probe of chip (x, y), returning the command's
// result index.
func (p *Pipeline) Ping(x, y int) int {
	return p.b.Ping(topo.Coord{X: x, Y: y})
}

// WriteMem appends a write of data into chip (x, y)'s SDRAM at addr.
func (p *Pipeline) WriteMem(x, y int, addr uint32, data []byte) int {
	return p.b.WriteMem(topo.Coord{X: x, Y: y}, addr, data)
}

// ReadMem appends a read of n bytes from chip (x, y)'s SDRAM at addr.
func (p *Pipeline) ReadMem(x, y int, addr uint32, n int) int {
	return p.b.ReadMem(topo.Coord{X: x, Y: y}, addr, n)
}

// FillMem appends a flood-fill write: data propagates chip-to-chip over
// nearest-neighbour links (like the boot image, section 5.2) and every
// alive chip stores it at addr — one Ethernet transfer to load the whole
// machine.
func (p *Pipeline) FillMem(addr uint32, data []byte) int {
	idx, err := p.b.FillMem(addr, data)
	if err != nil && p.err == nil {
		p.err = err
	}
	return idx
}

// Run issues the batch — the first window of commands starts serialising
// onto the Ethernet immediately, completions launch the rest — and
// drives the machine under parallel lookahead windows until every
// command has resolved. Per-command failures (including per-command
// timeouts) are reported in the results; the returned error is reserved
// for batch-level faults.
func (p *Pipeline) Run() ([]Result, error) {
	if p.err != nil {
		return nil, p.err
	}
	if err := p.hl.m.runBatch(p.b); err != nil {
		return nil, err
	}
	out := make([]Result, len(p.b.Responses()))
	for i, r := range p.b.Responses() {
		out[i] = Result{Data: r.Data, Chips: r.Chips, RTTUS: r.RTT.Micros(), Err: r.Err}
	}
	return out, nil
}

// Ping checks chip (x, y) responds, returning the round-trip time in
// microseconds.
func (hl *HostLink) Ping(x, y int) (rttUS float64, err error) {
	res, err := hl.single(func(p *Pipeline) { p.Ping(x, y) })
	if err != nil {
		return 0, err
	}
	return res.RTTUS, res.Err
}

// WriteMem stores data into chip (x, y)'s SDRAM at addr.
func (hl *HostLink) WriteMem(x, y int, addr uint32, data []byte) error {
	res, err := hl.single(func(p *Pipeline) { p.WriteMem(x, y, addr, data) })
	if err != nil {
		return err
	}
	return res.Err
}

// ReadMem fetches n bytes from chip (x, y)'s SDRAM at addr.
func (hl *HostLink) ReadMem(x, y int, addr uint32, n int) ([]byte, error) {
	res, err := hl.single(func(p *Pipeline) { p.ReadMem(x, y, addr, n) })
	if err != nil {
		return nil, err
	}
	return res.Data, res.Err
}

// FillMem flood-fills data to every alive chip's SDRAM at addr,
// reporting how many chips acknowledged.
func (hl *HostLink) FillMem(addr uint32, data []byte) (chips int, err error) {
	res, err := hl.single(func(p *Pipeline) { p.FillMem(addr, data) })
	if err != nil {
		return 0, err
	}
	return res.Chips, res.Err
}

// single runs a one-command batch. A timed-out command surfaces its
// per-command error; the machine keeps every clock at exactly the
// instant the command resolved.
func (hl *HostLink) single(build func(*Pipeline)) (Result, error) {
	p := hl.Batch(1)
	build(p)
	res, err := p.Run()
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

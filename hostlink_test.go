package spinngo

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"spinngo/internal/topo"
)

// TestHostTimeoutStopsAtDeadline pins the await deadline fix: when the
// response is never coming and the only pending event lies far beyond
// the timeout (a long quiet gap), the link must report the loss with
// every shard clock at exactly the timeout instant — not execute the
// far event first and drag the whole machine past the deadline, which
// is what testing the clock after stepping used to do.
func TestHostTimeoutStopsAtDeadline(t *testing.T) {
	m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 9})
	defer m.Close()
	hl, err := m.AttachHost()
	if err != nil {
		t.Fatal(err)
	}
	// Sever the gateway chip: no command can leave (0,0), so no response
	// can ever arrive.
	for _, dir := range []string{"E", "NE", "N", "W", "SW", "S"} {
		if err := m.FailLink(0, 0, dir); err != nil {
			t.Fatal(err)
		}
	}
	// The next event after the command's debris drains: one lone tick
	// long after the timeout. The buggy loop executed it.
	start := m.pe.Now()
	far := start + 50*hostOpTimeout
	fired := false
	m.domAt(topo.Coord{X: 2, Y: 2}).At(far, func() { fired = true })

	if _, err := hl.Ping(3, 3); err == nil {
		t.Fatal("ping through a severed gateway should time out")
	}
	if fired {
		t.Error("event beyond the deadline executed during a host wait")
	}
	if got := m.pe.Now() - start; got != hostOpTimeout {
		t.Errorf("clock advanced %v during the timed-out command, want exactly %v",
			got, hostOpTimeout)
	}
	// Every shard agrees (the clocks were re-synchronised), and the far
	// event is still pending for the next run phase.
	next, ok := m.pe.NextEventAt()
	if !ok || next != far {
		t.Errorf("pending event at %v, want the far tick at %v", next, far)
	}
}

// severChip cuts every link of chip (x, y).
func severChip(t *testing.T, m *Machine, x, y int) {
	t.Helper()
	for _, dir := range []string{"E", "NE", "N", "W", "SW", "S"} {
		if err := m.FailLink(x, y, dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchTimeoutIsolation pins per-command timeout isolation: in a
// batch where one target is unreachable, only that command expires —
// at its own deadline — while every other command completes, and stray
// state of the expired command cannot leak into host results. This is
// the batched generalisation of TestHostTimeoutStopsAtDeadline's
// single-command case.
func TestBatchTimeoutIsolation(t *testing.T) {
	m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 10, Workers: 4})
	defer m.Close()
	hl, err := m.AttachHost()
	if err != nil {
		t.Fatal(err)
	}
	// Island chip (3,3): commands to it can never complete.
	severChip(t, m, 3, 3)

	payload := []byte("survivor payload")
	p := hl.Batch(4).Timeout(10 * time.Millisecond)
	okWrite := p.WriteMem(1, 1, 0x100, payload)
	lost := p.Ping(3, 3)
	okPing := p.Ping(2, 2)
	okRead := p.ReadMem(1, 1, 0x100, len(payload))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[lost].Err == nil {
		t.Error("command to the severed chip did not time out")
	}
	for _, i := range []int{okWrite, okPing, okRead} {
		if res[i].Err != nil {
			t.Errorf("command %d failed alongside the timeout: %v", i, res[i].Err)
		}
	}
	if !bytes.Equal(res[okRead].Data, payload) {
		t.Errorf("read back %q, want %q — the timed-out command corrupted a neighbour", res[okRead].Data, payload)
	}
	// The expired command paid exactly its own deadline, not the global
	// one, and did not stall the batch: the survivors' round trips are
	// far shorter.
	if got := res[lost].RTTUS; got != (10*time.Millisecond).Seconds()*1e6 {
		t.Errorf("expired command RTT %v us, want exactly the 10ms deadline", got)
	}
	if res[okPing].RTTUS >= res[lost].RTTUS {
		t.Error("a surviving command waited out the lost command's deadline")
	}
	if m.host.Inflight() != 0 {
		t.Errorf("%d commands stuck in flight", m.host.Inflight())
	}
}

// TestBatchWindowOneMatchesSerial pins the strategy-equivalence
// contract the batch API rests on: a window-1 batch issues each command
// at the exact instant the previous one resolved — precisely what
// calling the synchronous single-command API in a loop does — so the
// two leave byte-identical machines behind, even though one drove the
// engine once and the other once per command.
func TestBatchWindowOneMatchesSerial(t *testing.T) {
	run := func(batched bool) (string, uint64) {
		m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 11, Workers: 4})
		defer m.Close()
		hl, err := m.AttachHost()
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("identical trajectories")
		var out string
		if batched {
			p := hl.Batch(1)
			p.WriteMem(2, 1, 0x200, payload)
			ri := p.ReadMem(2, 1, 0x200, len(payload))
			p.Ping(3, 3)
			res, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			out = fmt.Sprintf("%q", res[ri].Data)
		} else {
			if err := hl.WriteMem(2, 1, 0x200, payload); err != nil {
				t.Fatal(err)
			}
			data, err := hl.ReadMem(2, 1, 0x200, len(payload))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := hl.Ping(3, 3); err != nil {
				t.Fatal(err)
			}
			out = fmt.Sprintf("%q", data)
		}
		return fmt.Sprintf("%s now=%d pending=%d sent=%d", out,
			m.pe.Now(), m.pe.Pending(), m.host.PacketsSent), m.pe.Processed()
	}
	serial, serialEvents := run(false)
	batched, batchedEvents := run(true)
	if serial != batched || serialEvents != batchedEvents {
		t.Errorf("window-1 batch diverged from serial issue:\nserial:  %s (%d events)\nbatched: %s (%d events)",
			serial, serialEvents, batched, batchedEvents)
	}
}

// TestHostOriginConfigurable pins the satellite fix: the host attach
// chip is configuration, not a hardcoded (0,0), and moving it changes
// only round-trip times — the model's behaviour (spike rasters, boot
// shape) is byte-identical modulo RTT, because model time is measured
// from load completion wherever the gateway sits.
func TestHostOriginConfigurable(t *testing.T) {
	type outcome struct {
		raster string
		rtt    float64
		boot   BootReport
	}
	run := func(origin string) outcome {
		m, err := NewMachine(MachineConfig{Width: 4, Height: 4, Seed: 12, Workers: 2, HostOrigin: origin})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		br, err := m.Boot()
		if err != nil {
			t.Fatal(err)
		}
		hl, err := m.AttachHost()
		if err != nil {
			t.Fatal(err)
		}
		// RTT to a chip adjacent to (0,0) but far from (2,2).
		rtt, err := hl.Ping(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		model := NewModel()
		stim := model.AddPoisson("stim", 60, 200)
		exc := model.AddLIF("exc", 150, DefaultLIFConfig())
		if err := model.Connect(stim, exc, Conn{Rule: RandomRule, P: 0.2, WeightNA: 1.2, DelayMS: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Load(model); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(60); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, s := range m.Spikes(exc) {
			fmt.Fprintf(&b, "%d@%d ", s.Neuron, s.TimeMS)
		}
		o := outcome{raster: b.String(), rtt: rtt, boot: *br}
		o.boot.LoadTimeMS = 0 // flood time legitimately varies with the gateway
		return o
	}
	def := run("")
	far := run("2,2")
	if def.raster != far.raster {
		t.Errorf("moving the host gateway changed the model:\n(0,0): %s\n(2,2): %s", def.raster, far.raster)
	}
	if def.boot != far.boot {
		t.Errorf("boot shape changed with the gateway: %+v vs %+v", def.boot, far.boot)
	}
	if def.rtt == far.rtt {
		t.Error("RTT identical from both gateways; the attach point is not being modelled")
	}
}

// TestHostOriginValidation: bad attach points are rejected up front.
func TestHostOriginValidation(t *testing.T) {
	for _, origin := range []string{"4,0", "0,4", "-1,0", "x", "1", "1,2,3", "1,2x"} {
		cfg := MachineConfig{Width: 4, Height: 4, HostOrigin: origin}
		if err := cfg.Validate(); err == nil {
			t.Errorf("HostOrigin %q accepted", origin)
		}
		if _, err := NewMachine(cfg); err == nil {
			t.Errorf("NewMachine accepted HostOrigin %q", origin)
		}
	}
	cfg := MachineConfig{Width: 4, Height: 4, HostOrigin: "3,2"}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid HostOrigin rejected: %v", err)
	}
}

// TestFillMemReroutesAroundFailedLink: the acknowledgement tree is
// rebuilt over the live links at the next fill, so a link failure
// between bulk loads neither loses a subtree's acknowledgements nor
// fakes the coverage count.
func TestFillMemReroutesAroundFailedLink(t *testing.T) {
	m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 14, Workers: 2})
	defer m.Close()
	hl, err := m.AttachHost()
	if err != nil {
		t.Fatal(err)
	}
	// Cut several links around the gateway; the alive machine stays
	// connected, so the rebuilt tree must still span all 16 chips.
	for _, l := range []struct {
		x, y int
		d    string
	}{{0, 0, "E"}, {0, 0, "N"}, {1, 1, "NE"}} {
		if err := m.FailLink(l.x, l.y, l.d); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("rerouted acknowledgements")
	chips, err := hl.FillMem(0x5400_0000, payload)
	if err != nil {
		t.Fatalf("fill after link failures: %v", err)
	}
	if chips != 16 {
		t.Errorf("fill acknowledged by %d chips, want 16 via rerouted tree", chips)
	}
	back, err := hl.ReadMem(2, 3, 0x5400_0000, len(payload))
	if err != nil || !bytes.Equal(back, payload) {
		t.Errorf("payload not delivered across the damaged fabric: %v", err)
	}
}

// TestFillMemBulkLoad: the flood-fill write loads every chip from one
// Ethernet transfer, in one engine transition, and the payload is
// readable back from an arbitrary chip.
func TestFillMemBulkLoad(t *testing.T) {
	m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 13, Workers: 4})
	defer m.Close()
	hl, err := m.AttachHost()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("runtime-"), 64) // 512 B
	before := m.SimStats().HostTransitions
	chips, err := hl.FillMem(0x5100_0000, payload)
	if err != nil {
		t.Fatal(err)
	}
	if chips != 16 {
		t.Errorf("flood acknowledged by %d chips, want 16", chips)
	}
	if got := m.SimStats().HostTransitions - before; got != 1 {
		t.Errorf("machine-wide fill cost %d engine transitions, want 1", got)
	}
	back, err := hl.ReadMem(3, 2, 0x5100_0000, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Error("flood payload not readable back from a far chip")
	}
}

// TestFillMemPartialCoverage pins the flood-fill coverage report: a fill
// whose acknowledgement tree was built while the whole machine was
// reachable, but whose chunks can no longer reach an islanded chip,
// resolves at its deadline with ErrHostTimeout — distinguishable with
// errors.Is from ErrHostUnreachable — and reports the coverage actually
// certified: at least the gateway's own copy, strictly fewer than all 16
// chips. The old path reported zero chips for any timed-out fill,
// indistinguishable from one that never left the host.
func TestFillMemPartialCoverage(t *testing.T) {
	m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 12, Workers: 4})
	defer m.Close()
	hl, err := m.AttachHost()
	if err != nil {
		t.Fatal(err)
	}
	// Register the fill first — the acknowledgement tree spans all 16
	// chips — then island (2,2) before any chunk moves.
	p := hl.Batch(1).Timeout(5 * time.Millisecond)
	fi := p.FillMem(0x2000, []byte("partial coverage payload"))
	severChip(t, m, 2, 2)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := res[fi]
	if !errors.Is(r.Err, ErrHostTimeout) {
		t.Fatalf("islanded fill resolved with %v, want ErrHostTimeout", r.Err)
	}
	if errors.Is(r.Err, ErrHostUnreachable) {
		t.Error("timed-out fill also matches ErrHostUnreachable; the two must be distinguishable")
	}
	if r.Chips < 1 || r.Chips >= 16 {
		t.Errorf("timed-out fill certified %d chips, want partial coverage in [1,16)", r.Chips)
	}
	if m.host.Inflight() != 0 {
		t.Errorf("%d commands stuck in flight", m.host.Inflight())
	}
}

package spinngo

import (
	"testing"

	"spinngo/internal/topo"
)

// TestHostTimeoutStopsAtDeadline pins the await deadline fix: when the
// response is never coming and the only pending event lies far beyond
// the timeout (a long quiet gap), the link must report the loss with
// every shard clock at exactly the timeout instant — not execute the
// far event first and drag the whole machine past the deadline, which
// is what testing the clock after stepping used to do.
func TestHostTimeoutStopsAtDeadline(t *testing.T) {
	m := buildSmallMachine(t, MachineConfig{Width: 4, Height: 4, Seed: 9})
	defer m.Close()
	hl, err := m.AttachHost()
	if err != nil {
		t.Fatal(err)
	}
	// Sever the gateway chip: no command can leave (0,0), so no response
	// can ever arrive.
	for _, dir := range []string{"E", "NE", "N", "W", "SW", "S"} {
		if err := m.FailLink(0, 0, dir); err != nil {
			t.Fatal(err)
		}
	}
	// The next event after the command's debris drains: one lone tick
	// long after the timeout. The buggy loop executed it.
	start := m.pe.Now()
	far := start + 50*hostOpTimeout
	fired := false
	m.domAt(topo.Coord{X: 2, Y: 2}).At(far, func() { fired = true })

	if _, err := hl.Ping(3, 3); err == nil {
		t.Fatal("ping through a severed gateway should time out")
	}
	if fired {
		t.Error("event beyond the deadline executed during a host wait")
	}
	if got := m.pe.Now() - start; got != hostOpTimeout {
		t.Errorf("clock advanced %v during the timed-out command, want exactly %v",
			got, hostOpTimeout)
	}
	// Every shard agrees (the clocks were re-synchronised), and the far
	// event is still pending for the next run phase.
	next, ok := m.pe.NextEventAt()
	if !ok || next != far {
		t.Errorf("pending event at %v, want the far tick at %v", next, far)
	}
}

// Command spinnboot demonstrates the SpiNNaker boot sequence of paper
// section 5.2 on a simulated machine, with optional fault injection:
// core self-test and monitor election, nearest-neighbour probe and
// dead-chip rescue, coordinate flood from (0,0), p2p configuration, and
// flood-fill application loading.
//
// Usage:
//
//	spinnboot [-w 8] [-h 8] [-dead "2,3;5,5"] [-harddead "1,1"]
//	          [-corefault 0.05] [-redundancy 2] [-blocks 32] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"spinngo/internal/boot"
	"spinngo/internal/router"
	"spinngo/internal/sim"
	"spinngo/internal/topo"
)

func parseCoords(s string) (map[topo.Coord]bool, error) {
	out := map[topo.Coord]bool{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ";") {
		var x, y int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d,%d", &x, &y); err != nil {
			return nil, fmt.Errorf("bad coordinate %q: %w", part, err)
		}
		out[topo.Coord{X: x, Y: y}] = true
	}
	return out, nil
}

func main() {
	w := flag.Int("w", 8, "mesh width in chips")
	h := flag.Int("h", 8, "mesh height in chips")
	dead := flag.String("dead", "", "chips that fail to boot, e.g. \"2,3;5,5\" (rescuable)")
	hardDead := flag.String("harddead", "", "chips that cannot be rescued")
	coreFault := flag.Float64("corefault", 0, "per-core self-test failure probability")
	redundancy := flag.Int("redundancy", 1, "flood-fill copies per block")
	blocks := flag.Int("blocks", 32, "application image blocks")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	deadChips, err := parseCoords(*dead)
	if err != nil {
		log.Fatal(err)
	}
	hardDeadChips, err := parseCoords(*hardDead)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.New(*seed)
	fab, err := router.NewFabric(eng, router.DefaultParams(*w, *h))
	if err != nil {
		log.Fatal(err)
	}
	cfg := boot.DefaultConfig()
	cfg.DeadChips = deadChips
	cfg.HardDeadChips = hardDeadChips
	cfg.CoreFaultProb = *coreFault
	cfg.Redundancy = *redundancy
	cfg.ImageBlocks = *blocks

	ctl := boot.NewController(eng, fab, cfg)
	res, err := ctl.Run()
	if err != nil {
		log.Fatal(err)
	}

	total := *w * *h
	fmt.Printf("machine:             %dx%d (%d chips, %d cores/chip)\n", *w, *h, total, cfg.Cores)
	fmt.Printf("booted locally:      %d\n", res.BootedLocally)
	fmt.Printf("rescued by nn:       %d\n", res.Rescued)
	fmt.Printf("dead forever:        %d\n", res.DeadForever)
	fmt.Printf("coordinates correct: %v (flood done at %v)\n", res.CoordCorrect, res.CoordTime)
	fmt.Printf("p2p configured:      %d\n", res.P2PReady)
	fmt.Printf("image loaded:        %d chips of %d blocks x %d B (redundancy %d)\n",
		res.Loaded, cfg.ImageBlocks, cfg.BlockBytes, cfg.Redundancy)
	fmt.Printf("load time:           %v\n", res.LoadTime)
	fmt.Printf("nn packets:          %d\n", res.NNPackets)

	// Verify image integrity everywhere it loaded.
	bad := 0
	for i := 0; i < total; i++ {
		c := fab.Params().Torus.CoordOf(i)
		if !ctl.Alive(c) {
			continue
		}
		if err := ctl.VerifyImage(c); err != nil {
			bad++
		}
	}
	fmt.Printf("image verification:  %d corrupt chips\n", bad)

	// Chip map: o = booted, R = rescued, X = dead.
	fmt.Println("\nchip map (origin bottom-left):")
	for y := *h - 1; y >= 0; y-- {
		for x := 0; x < *w; x++ {
			c := topo.Coord{X: x, Y: y}
			switch {
			case ctl.Rescued(c):
				fmt.Print("R ")
			case ctl.Alive(c):
				fmt.Print("o ")
			default:
				fmt.Print("X ")
			}
		}
		fmt.Println()
	}
}

// Command spinnsim builds a configurable stimulus-driven spiking network
// on a simulated SpiNNaker machine and runs it in biological time,
// printing the run report and an ASCII spike raster — the quickstart
// workflow of the public API as a one-shot tool.
//
// Usage:
//
//	spinnsim [-w 4] [-h 4] [-neurons 400] [-stim 100] [-rate 150]
//	         [-p 0.05] [-weight 0.8] [-delay 2] [-ms 500]
//	         [-faillink "1,1,E"] [-raster] [-seed 1] [-workers 0]
//	         [-partition auto] [-boards WxH] [-boardlink slow]
//	         [-cabinets WxH] [-cabinetlink slow] [-repartition]
//	         [-queue wheel] [-snapshot ckpt.snap] [-restore ckpt.snap]
//	         [-workload storm-campaign] [-workloads]
//	         [-cpuprofile run.cpu.pprof] [-memprofile run.mem.pprof]
//
// -snapshot writes a checkpoint image after the run; -restore resumes
// from one instead of building a machine (only -ms, -workers, -partition,
// -repartition, -faillink, -raster and -snapshot apply then — the
// machine, model and seed all come from the image, and any choice of
// workers/partition yields byte-identical results).
//
// -workload runs a declared workload document — a JSON file path, or
// the name of a built-in registry entry (-workloads lists them). The
// document pins the machine, network, stimuli, fault campaign and run
// schedule; only -workers, -partition, -raster and -snapshot apply
// alongside it, and the execution strategy never changes the results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"spinngo"
	"spinngo/internal/workload"
)

func main() {
	w := flag.Int("w", 4, "mesh width in chips")
	h := flag.Int("h", 4, "mesh height in chips")
	neurons := flag.Int("neurons", 400, "excitatory LIF population size")
	stim := flag.Int("stim", 100, "Poisson stimulus sources")
	rate := flag.Float64("rate", 150, "stimulus rate, Hz")
	p := flag.Float64("p", 0.05, "stimulus->exc connection probability")
	weight := flag.Float64("weight", 0.8, "synaptic weight, nA")
	delay := flag.Int("delay", 2, "synaptic delay, ms")
	ms := flag.Int("ms", 500, "biological run time, ms")
	failLink := flag.String("faillink", "", "fail a link, e.g. \"1,1,E\"")
	raster := flag.Bool("raster", false, "print an ASCII spike raster")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "simulation shards run in parallel (0 = automatic); any value yields the same results")
	partition := flag.String("partition", "auto", "shard geometry: bands, blocks, boards, cabinets or auto; any value yields the same results")
	boards := flag.String("boards", "", "board tiling in chips, e.g. \"8x2\" ('' = uniform fabric); board-crossing links use board-to-board PHY params")
	boardlink := flag.String("boardlink", "", "board-to-board link preset: slow (default) or uniform; requires -boards")
	cabinets := flag.String("cabinets", "", "cabinet tiling in boards, e.g. \"2x2\" ('' = no cabinet level); requires -boards; cabinet-crossing links use cabinet-to-cabinet PHY params")
	cabinetlink := flag.String("cabinetlink", "", "cabinet-to-cabinet link preset: slow (default) or uniform; requires -cabinets")
	repartition := flag.Bool("repartition", false, "re-partition at quiescence boundaries when the observed event density warrants it; any setting yields the same results")
	queue := flag.String("queue", "", "event queue implementation: wheel (default) or heap (debug reference); any choice yields the same results; ignored with -restore")
	soloThreshold := flag.Int("solothreshold", 0, "adaptive-mode solo bound in events/shard/window (0 = default 16); any value yields the same results")
	workloadRef := flag.String("workload", "", "run a declared workload: a JSON file path or a registry name (see -workloads)")
	listWorkloads := flag.Bool("workloads", false, "list the built-in workload registry and exit")
	snapshotPath := flag.String("snapshot", "", "write a checkpoint image to this file after the run")
	restorePath := flag.String("restore", "", "resume from a checkpoint image; -workers/-partition pick the execution strategy, everything else comes from the image")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *listWorkloads {
		for _, name := range workload.Names() {
			wl, err := workload.Get(name)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			campaign := ""
			if wl.Campaign != nil {
				campaign = fmt.Sprintf(" [campaign: %d events]", len(wl.Campaign.Events))
			}
			fmt.Printf("%-18s %dx%d, %dms%s\n    %s\n",
				name, wl.Machine.Width, wl.Machine.Height, wl.Run.BioMS, campaign, wl.Description)
		}
		return
	}
	if *workloadRef != "" {
		runWorkload(*workloadRef, *workers, *partition, *snapshotPath, *raster)
		return
	}

	var machine *spinngo.Machine
	var stimPop, excPop spinngo.Pop
	havePops := false
	if *restorePath != "" {
		image, err := os.ReadFile(*restorePath)
		if err != nil {
			log.Fatal(err)
		}
		machine, err = spinngo.RestoreOn(image, *workers, *partition)
		if err != nil {
			log.Fatal(err)
		}
		st := machine.SimStats()
		fmt.Printf("restored %s (format v%d) onto %d %s shards\n",
			*restorePath, spinngo.SnapshotVersion, st.Shards, st.Geometry)
		// The quickstart model names its populations stim/exc; images
		// from other programs still run, just without the rate summary.
		var okStim, okExc bool
		stimPop, okStim = machine.Pop("stim")
		excPop, okExc = machine.Pop("exc")
		havePops = okStim && okExc
	} else {
		policy := ""
		if *repartition {
			policy = spinngo.RepartitionAuto
		}
		var err error
		machine, err = spinngo.NewMachine(spinngo.MachineConfig{
			Width: *w, Height: *h, Seed: *seed, Workers: *workers, Partition: *partition,
			Boards: *boards, BoardLinkParams: *boardlink, Repartition: policy,
			Cabinets: *cabinets, CabinetLinkParams: *cabinetlink,
			EventQueue: *queue, SoloThresholdEvents: *soloThreshold,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := machine.SimStats()
		fmt.Printf("engine: %d %s shards, boards %s, cabinets %s\n",
			st.Shards, st.Geometry, st.Boards, st.Cabinets)
		fmt.Printf("cut:    %d links (%d on-board + %d board-to-board + %d cabinet-to-cabinet)\n",
			st.CutLinks, st.CutLinksOnBoard, st.CutLinksBoard, st.CutLinksCabinet)
		fmt.Printf("lookahead: %v (uniform-params bound %v)\n", st.Lookahead, st.UniformLookahead)
		bootRep, err := machine.Boot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("booted %d chips, %d application cores (flood-fill load %.1f ms)\n",
			bootRep.Chips, bootRep.AppCores, bootRep.LoadTimeMS)

		model := spinngo.NewModel()
		stimPop = model.AddPoisson("stim", *stim, *rate)
		excPop = model.AddLIF("exc", *neurons, spinngo.DefaultLIFConfig())
		havePops = true
		if err := model.Connect(stimPop, excPop, spinngo.Conn{
			Rule: spinngo.RandomRule, P: *p, WeightNA: *weight, DelayMS: *delay,
		}); err != nil {
			log.Fatal(err)
		}
		loadRep, err := machine.Load(model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d fragments, %d synapses (%d B), %d router entries (max/chip %d)\n",
			loadRep.Fragments, loadRep.Synapses, loadRep.SynapseBytes,
			loadRep.TableEntries, loadRep.MaxChipTable)
		fmt.Printf("host data load:  %.2f ms of simulated Ethernet+fabric time (pipelined batch)\n",
			loadRep.LoadTimeMS)
	}

	if *failLink != "" {
		var x, y int
		var dir string
		parts := strings.Split(*failLink, ",")
		if len(parts) != 3 {
			log.Fatalf("bad -faillink %q", *failLink)
		}
		if _, err := fmt.Sscanf(parts[0]+" "+parts[1], "%d %d", &x, &y); err != nil {
			log.Fatalf("bad -faillink %q: %v", *failLink, err)
		}
		dir = strings.TrimSpace(parts[2])
		if err := machine.FailLink(x, y, dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failed link (%d,%d) %s\n", x, y, dir)
	}

	if *ms <= 0 {
		log.Fatalf("non-positive run length %d ms", *ms)
	}
	// The re-selection policy acts at quiescence boundaries (between
	// Run calls), so a re-partitioning run advances in chunks; results
	// are byte-identical either way.
	step := *ms
	if *repartition && step > 20 {
		step = 20
	}
	var rep *spinngo.RunReport
	for remaining := *ms; remaining > 0; remaining -= step {
		n := step
		if n > remaining {
			n = remaining
		}
		var err error
		if rep, err = machine.Run(n); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(rep)
	if havePops {
		fmt.Printf("stim rate:       %.1f Hz\n", machine.MeanRateHz(stimPop))
		fmt.Printf("exc rate:        %.1f Hz\n", machine.MeanRateHz(excPop))
	}
	st := machine.SimStats()
	fmt.Printf("engine:          %d windows (%d parallel, %.1f events/window)\n",
		st.Windows, st.ParallelWindows, st.EventsPerWindow)
	fmt.Printf("hand-offs:       %d (%d batched runs covering %d windows, solo threshold %d)\n",
		st.Handoffs, st.BatchRuns, st.BatchedWindows, st.SoloThreshold)
	fmt.Printf("partition:       %s/%d shards after %d repartitions (lookahead %v)\n",
		st.Geometry, st.Shards, st.Repartitions, st.Lookahead)
	fmt.Printf("host:            %d engine transitions (boot phases + batched loads)\n",
		st.HostTransitions)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Printf("memory:          %.1f MiB heap in use, %d of %d chips instantiated\n",
		float64(mem.HeapInuse)/(1<<20), machine.InstantiatedChips(), machine.TorusChips())

	if *snapshotPath != "" {
		image, err := machine.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*snapshotPath, image, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint:      %d bytes (format v%d) -> %s\n",
			len(image), spinngo.SnapshotVersion, *snapshotPath)
	}
	if *raster && havePops {
		printRaster(machine, excPop, *ms)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}

// runWorkload resolves, prepares and runs a declared workload document
// on its own chunk schedule, printing the report, per-population rates,
// and campaign damage.
func runWorkload(ref string, workers int, partition, snapshotPath string, raster bool) {
	var wl *workload.Workload
	if data, readErr := os.ReadFile(ref); readErr == nil {
		var err error
		if wl, err = workload.Parse(data); err != nil {
			log.Fatalf("%s: %v", ref, err)
		}
	} else {
		var getErr error
		if wl, getErr = workload.Get(ref); getErr != nil {
			log.Fatalf("-workload %q: %v; %v (try -workloads)", ref, readErr, getErr)
		}
	}
	// Flags override the document's execution strategy when given; the
	// strategy never changes the results either way.
	if workers == 0 {
		workers = wl.Machine.Workers
	}
	if partition == "auto" && wl.Machine.Partition != "" {
		partition = wl.Machine.Partition
	}
	fmt.Printf("workload %q: %s\n", wl.Name, wl.Description)
	machine, err := spinngo.PrepareWorkloadOn(wl, workers, partition)
	if err != nil {
		log.Fatal(err)
	}
	defer machine.Close()
	st := machine.SimStats()
	fmt.Printf("engine: %d %s shards, boards %s, cabinets %s\n",
		st.Shards, st.Geometry, st.Boards, st.Cabinets)
	if wl.Campaign != nil {
		fmt.Printf("campaign armed: %d events (seed %d)\n", len(wl.Campaign.Events), wl.Campaign.Seed)
	}
	var rep *spinngo.RunReport
	for _, n := range spinngo.WorkloadChunks(wl) {
		if rep, err = machine.Run(n); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(rep)
	var biggest spinngo.Pop
	biggestN := 0
	for _, p := range wl.Populations {
		pop, ok := machine.Pop(p.Name)
		if !ok {
			continue
		}
		fmt.Printf("%-16s %.1f Hz\n", p.Name+" rate:", machine.MeanRateHz(pop))
		if pop.Size() > biggestN {
			biggest, biggestN = pop, pop.Size()
		}
	}
	if dead := machine.DeadChips(); len(dead) > 0 {
		fmt.Printf("campaign:        %d chips dead, %d alive\n", len(dead), machine.AliveChips())
	}
	if snapshotPath != "" {
		image, err := machine.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(snapshotPath, image, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint:      %d bytes (format v%d) -> %s\n",
			len(image), spinngo.SnapshotVersion, snapshotPath)
	}
	if raster && biggestN > 0 {
		printRaster(machine, biggest, wl.Run.BioMS)
	}
}

// printRaster renders population spikes as a time-binned ASCII raster.
func printRaster(m *spinngo.Machine, p spinngo.Pop, ms int) {
	const cols = 80
	rows := 20
	binMS := (ms + cols - 1) / cols
	perRow := (p.Size() + rows - 1) / rows
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	for _, s := range m.Spikes(p) {
		r := s.Neuron / perRow
		c := int(s.TimeMS) / binMS
		if r >= 0 && r < rows && c >= 0 && c < cols {
			grid[r][c]++
		}
	}
	fmt.Printf("\nraster of %q (%d neurons/row, %d ms/col):\n", p.Name(), perRow, binMS)
	glyphs := " .:*#@"
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			g := grid[r][c]
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			fmt.Print(string(glyphs[g]))
		}
		fmt.Println()
	}
}

// Command benchsweep measures the sharded engine's scaling across
// partition geometries and worker counts on the 8x8 reference workload
// and writes the results as JSON — the repo's bench trajectory record
// (`make bench` writes BENCH_PR2.json).
//
// Usage:
//
//	benchsweep [-out BENCH_PR2.json]
package main

import (
	"flag"
	"fmt"
	"log"

	"spinngo/internal/benchsweep"
)

func main() {
	out := flag.String("out", "BENCH_PR2.json", "JSON output path ('' = stdout table only)")
	flag.Parse()

	var results []benchsweep.Result
	fmt.Printf("worker/partition sweep: %dms of biological time per op\n", benchsweep.BioMS)
	for _, cfg := range benchsweep.Grid() {
		r, err := benchsweep.Measure(cfg)
		if err != nil {
			log.Fatalf("%s/%d: %v", cfg.Partition, cfg.Workers, err)
		}
		fmt.Println(benchsweep.Row(r))
		results = append(results, r)
	}
	if *out != "" {
		if err := benchsweep.WriteJSON(*out, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// Command benchsweep measures the sharded engine's scaling across
// partition geometries, worker counts, torus sizes and board
// hierarchies, and writes the results as JSON — the repo's bench
// trajectory record (`make bench` writes BENCH_PR9.json). The sweep has
// six parts: the 8x8 reference worker sweep (bands/blocks x workers),
// the board-hierarchy comparison (bands vs blocks vs boards on
// heterogeneous 8x8, 16x16 and 32x32 machines with slow board-to-board
// links), the multi-core scaling sweep (workers crossed with GOMAXPROCS,
// every cell stamped with the host's core count so speedup claims stay
// honest on single-core boxes), the shifting-hotspot scenario, which
// pits runtime re-partitioning against every fixed geometry and records
// the barrier-rate win of re-shaping the partition to the live
// workload, the host-load scenario, which compares serial host
// commands with the pipelined batch and the flood-fill bulk write, the
// scale scenario, which measures bytes of live heap per chip on idle
// and booted machines up to 256x256 and the achieved lookahead of each
// packaging level (uniform, board, cabinet), and the fault-campaign
// scenario, which runs the storm-campaign conformance workload — link
// waves, a chip-death storm, a repair and a severed region — across
// every partition geometry and records what surviving it costs each
// one.
//
// Usage:
//
//	benchsweep [-out BENCH_PR10.json] [-hierarchy-only] [-workers-only]
//	           [-scaling-only] [-hotspot-only] [-hostload-only]
//	           [-scale-only] [-campaign-only] [-quick]
//	           [-cpuprofile sweep.cpu.pprof] [-memprofile sweep.mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"spinngo/internal/benchsweep"
)

func main() {
	out := flag.String("out", "BENCH_PR10.json", "JSON output path ('' = stdout table only)")
	hierOnly := flag.Bool("hierarchy-only", false, "run only the board-hierarchy comparison")
	workersOnly := flag.Bool("workers-only", false, "run only the 8x8 worker sweep")
	scalingOnly := flag.Bool("scaling-only", false, "run only the workers x GOMAXPROCS scaling sweep")
	hotspotOnly := flag.Bool("hotspot-only", false, "run only the shifting-hotspot repartition scenario")
	hostloadOnly := flag.Bool("hostload-only", false, "run only the host-load (serial vs batch vs flood-fill) scenario")
	scaleOnly := flag.Bool("scale-only", false, "run only the scale (sparse heap + hierarchy lookahead) scenario")
	campaignOnly := flag.Bool("campaign-only", false, "run only the fault-campaign (storm-campaign workload) scenario")
	quick := flag.Bool("quick", false, "one iteration per cell (CI smoke; structural columns exact, timing noisy)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	exclusive := 0
	for _, f := range []bool{*hierOnly, *workersOnly, *scalingOnly, *hotspotOnly, *hostloadOnly, *scaleOnly, *campaignOnly} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		log.Fatal("-hierarchy-only, -workers-only, -scaling-only, -hotspot-only, -hostload-only, -scale-only and -campaign-only are mutually exclusive")
	}
	// With no -*-only flag every section runs; with one, only it does.
	want := func(only bool) bool { return exclusive == 0 || only }

	// The timed sweeps skip cells when a single -*-only scenario is
	// chosen; the scale grid (memory, not throughput) runs separately
	// below so its cells never pass through the benchmark harness.
	var grid []benchsweep.Config
	if want(*workersOnly) {
		grid = append(grid, benchsweep.Grid()...)
	}
	if want(*hierOnly) {
		grid = append(grid, benchsweep.HierarchyGrid()...)
	}
	if want(*scalingOnly) {
		grid = append(grid, benchsweep.ScalingGrid()...)
	}
	var results []benchsweep.Result
	fmt.Printf("partition/worker/hierarchy sweep: %dms of biological time per op\n", benchsweep.BioMS)
	measure := benchsweep.Measure
	if *quick {
		measure = benchsweep.MeasureQuick
	}
	for _, cfg := range grid {
		r, err := measure(cfg)
		if err != nil {
			log.Fatalf("%dx%d %s/%s/%d: %v", cfg.Width, cfg.Height, cfg.Boards, cfg.Partition, cfg.Workers, err)
		}
		fmt.Println(benchsweep.Row(r))
		results = append(results, r)
	}
	if want(*hotspotOnly) {
		fmt.Printf("shifting-hotspot scenario: %dms of biological time, %d quiescence chunks\n",
			benchsweep.HotspotBioMS, benchsweep.HotspotChunks)
		for _, cfg := range benchsweep.HotspotGrid() {
			r, err := benchsweep.MeasureHotspot(cfg)
			if err != nil {
				log.Fatalf("hotspot %s/%s: %v", cfg.Partition, cfg.Repartition, err)
			}
			fmt.Println(benchsweep.HotspotRow(r))
			results = append(results, r)
		}
	}
	if want(*hostloadOnly) {
		fmt.Printf("host-load scenario: %d B to every chip, serial vs batched vs flood-fill\n",
			benchsweep.HostLoadBlockBytes)
		for _, cfg := range benchsweep.HostLoadGrid() {
			r, _, err := benchsweep.MeasureHostLoad(cfg)
			if err != nil {
				log.Fatalf("hostload %s: %v", cfg.Mode, err)
			}
			fmt.Println(benchsweep.HostLoadRow(r))
			results = append(results, r)
		}
	}
	if want(*campaignOnly) {
		fmt.Printf("fault-campaign scenario: the %q workload across partition geometries\n",
			benchsweep.CampaignWorkload)
		for _, cfg := range benchsweep.CampaignGrid() {
			r, err := benchsweep.MeasureCampaign(cfg)
			if err != nil {
				log.Fatalf("campaign %s/%d: %v", cfg.Partition, cfg.Workers, err)
			}
			fmt.Println(benchsweep.CampaignRow(r))
			results = append(results, r)
		}
	}
	if want(*scaleOnly) {
		fmt.Println("scale scenario: live heap per torus chip, idle vs booted, plus lookahead per packaging level")
		for _, cfg := range benchsweep.ScaleGrid() {
			r, err := benchsweep.MeasureScale(cfg)
			if err != nil {
				log.Fatalf("scale %dx%d %s: %v", cfg.Width, cfg.Height, cfg.Mode, err)
			}
			fmt.Println(benchsweep.ScaleRow(r))
			results = append(results, r)
		}
	}
	benchsweep.AnnotateSpeedup(results)
	if *out != "" {
		if err := benchsweep.WriteJSON(*out, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}

// Command benchsweep measures the sharded engine's scaling across
// partition geometries, worker counts, torus sizes and board
// hierarchies, and writes the results as JSON — the repo's bench
// trajectory record (`make bench` writes BENCH_PR3.json). The sweep has
// two parts: the 8x8 reference worker sweep (bands/blocks x workers)
// and the board-hierarchy comparison (bands vs blocks vs boards on
// heterogeneous 8x8, 16x16 and 32x32 machines with slow board-to-board
// links), which records the lookahead and barrier-rate win of
// board-aligned cuts.
//
// Usage:
//
//	benchsweep [-out BENCH_PR3.json] [-hierarchy-only] [-workers-only] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"spinngo/internal/benchsweep"
)

func main() {
	out := flag.String("out", "BENCH_PR3.json", "JSON output path ('' = stdout table only)")
	hierOnly := flag.Bool("hierarchy-only", false, "run only the board-hierarchy comparison")
	workersOnly := flag.Bool("workers-only", false, "run only the 8x8 worker sweep")
	quick := flag.Bool("quick", false, "one iteration per cell (CI smoke; structural columns exact, timing noisy)")
	flag.Parse()
	if *hierOnly && *workersOnly {
		log.Fatal("-hierarchy-only and -workers-only are mutually exclusive (the grid would be empty)")
	}

	var grid []benchsweep.Config
	if !*hierOnly {
		grid = append(grid, benchsweep.Grid()...)
	}
	if !*workersOnly {
		grid = append(grid, benchsweep.HierarchyGrid()...)
	}
	var results []benchsweep.Result
	fmt.Printf("partition/worker/hierarchy sweep: %dms of biological time per op\n", benchsweep.BioMS)
	measure := benchsweep.Measure
	if *quick {
		measure = benchsweep.MeasureQuick
	}
	for _, cfg := range grid {
		r, err := measure(cfg)
		if err != nil {
			log.Fatalf("%dx%d %s/%s/%d: %v", cfg.Width, cfg.Height, cfg.Boards, cfg.Partition, cfg.Workers, err)
		}
		fmt.Println(benchsweep.Row(r))
		results = append(results, r)
	}
	if *out != "" {
		if err := benchsweep.WriteJSON(*out, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

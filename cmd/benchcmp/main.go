// Command benchcmp diffs two bench trajectory files (the BENCH_PR*.json
// reports `make bench` writes), matching cells by their full sweep key
// and reporting the wall-clock and coordination deltas — the tool
// behind `make benchcmp OLD=BENCH_PR7.json NEW=BENCH_PR8.json`.
//
// For every cell present in both files it prints old and new ns/op, the
// percentage change, and the hand-off rate movement (the column the
// batched hand-off work targets; old files without the column show
// "-"). Cells whose spike fingerprint differs are flagged: a changed
// fingerprint means the workload itself changed, so the timing delta is
// not a like-for-like claim. Cells present in only one file are listed
// as added or removed — in a deterministic order, counted in the
// summary — so a sweep-grid change is visible, not silent. With -fail,
// a mean slowdown beyond
// -threshold percent across comparable cells exits nonzero — the CI
// regression gate.
//
// Usage:
//
//	benchcmp [-threshold 10] [-fail] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"spinngo/internal/benchsweep"
)

// cellKey identifies one sweep cell across reports: everything that
// picks the machine, workload and execution strategy.
type cellKey struct {
	w, h, workers, procs                      int
	boards, partition, repart, scenario, mode string
}

func key(r benchsweep.Result) cellKey {
	return cellKey{
		w: r.Width, h: r.Height, workers: r.Workers, procs: r.Procs,
		boards: r.Boards, partition: r.Partition, repart: r.Repartition,
		scenario: r.Scenario, mode: r.Mode,
	}
}

func (k cellKey) String() string {
	s := fmt.Sprintf("%dx%d", k.w, k.h)
	if k.boards != "" {
		s += " brd=" + k.boards
	}
	if k.partition != "" {
		s += " " + k.partition
	}
	s += fmt.Sprintf(" w=%d", k.workers)
	if k.procs > 0 {
		s += fmt.Sprintf(" procs=%d", k.procs)
	}
	if k.repart != "" {
		s += " repart=" + k.repart
	}
	if k.scenario != "" {
		s += " [" + k.scenario + "]"
	}
	if k.mode != "" {
		s += " mode=" + k.mode
	}
	return s
}

func load(path string) (benchsweep.Report, error) {
	var rep benchsweep.Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(buf, &rep)
}

func main() {
	threshold := flag.Float64("threshold", 10, "mean slowdown percent considered a regression")
	fail := flag.Bool("fail", false, "exit nonzero when the mean slowdown exceeds -threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 10] [-fail] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(1), err)
	}

	olds := make(map[cellKey]benchsweep.Result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		olds[key(r)] = r
	}

	var compared, reworked, added int
	var sumDelta float64
	fmt.Printf("%-52s %14s %14s %8s  %s\n", "cell", "old ns/op", "new ns/op", "delta", "handoffs/biosec")
	for _, nr := range newRep.Results {
		k := key(nr)
		or, ok := olds[k]
		if !ok {
			added++
			fmt.Printf("%-52s %14s %14d %8s  %s\n", k, "-", nr.NsPerOp, "added", ho(or, nr))
			continue
		}
		delete(olds, k)
		if or.Spikes != nr.Spikes {
			// Different spike fingerprint = different trajectory: the cell
			// was re-worked, not sped up or slowed down.
			reworked++
			fmt.Printf("%-52s %14d %14d %8s  %s\n", k, or.NsPerOp, nr.NsPerOp, "rework", ho(or, nr))
			continue
		}
		if or.NsPerOp <= 0 || nr.NsPerOp <= 0 {
			continue
		}
		delta := 100 * (float64(nr.NsPerOp) - float64(or.NsPerOp)) / float64(or.NsPerOp)
		compared++
		sumDelta += delta
		fmt.Printf("%-52s %14d %14d %+7.1f%%  %s\n", k, or.NsPerOp, nr.NsPerOp, delta, ho(or, nr))
	}
	// Cells only the old file has: report them in a deterministic order
	// (map iteration would shuffle the rows between runs).
	removedKeys := make([]cellKey, 0, len(olds))
	for k := range olds {
		removedKeys = append(removedKeys, k)
	}
	sort.Slice(removedKeys, func(i, j int) bool {
		return removedKeys[i].String() < removedKeys[j].String()
	})
	for _, k := range removedKeys {
		fmt.Printf("%-52s %14d %14s %8s\n", k, olds[k].NsPerOp, "-", "removed")
	}
	removed := len(removedKeys)

	if compared == 0 {
		fmt.Println("no comparable cells (disjoint grids or changed workloads)")
		if *fail {
			os.Exit(1)
		}
		return
	}
	mean := sumDelta / float64(compared)
	fmt.Printf("\n%d comparable cells, %d reworked, %d added, %d removed; mean wall-clock delta %+.1f%% (threshold %+.1f%%)\n",
		compared, reworked, added, removed, mean, *threshold)
	if *fail && mean > *threshold {
		fmt.Fprintf(os.Stderr, "benchcmp: mean slowdown %.1f%% exceeds threshold %.1f%%\n", mean, *threshold)
		os.Exit(1)
	}
}

// ho renders the hand-off rate movement for one cell; reports written
// before the column existed show "-".
func ho(or, nr benchsweep.Result) string {
	newSide := "-"
	if nr.HandoffsPerBioSecond > 0 {
		newSide = fmt.Sprintf("%.0f", nr.HandoffsPerBioSecond)
	}
	if or.HandoffsPerBioSecond > 0 {
		return fmt.Sprintf("%.0f -> %s", or.HandoffsPerBioSecond, newSide)
	}
	return "- -> " + newSide
}

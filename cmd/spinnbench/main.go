// Command spinnbench runs the paper-reproduction experiment suite
// (E1-E14 plus ablations A1-A2; see DESIGN.md and EXPERIMENTS.md) and
// prints each result as a table with a verdict comparing the measured
// shape against the paper's claim.
//
// Usage:
//
//	spinnbench [-only E5,E6] [-seed N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spinngo/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	seed := flag.Uint64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	want := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	trials := 6
	meshes := []int{4, 8, 16, 32}
	pairs := 80
	if *quick {
		trials = 2
		meshes = []int{4, 8}
		pairs = 20
	}

	type runner struct {
		id  string
		run func() (*experiments.Table, error)
	}
	runners := []runner{
		{"E1", func() (*experiments.Table, error) { return experiments.E1LinkCodes(), nil }},
		{"E2", func() (*experiments.Table, error) { return experiments.E2GlitchDeadlock(trials, *seed), nil }},
		{"E3", func() (*experiments.Table, error) { return experiments.E3TokenReset(2000, *seed), nil }},
		{"E4", func() (*experiments.Table, error) { return experiments.E4EventKernel(*seed), nil }},
		{"E5", func() (*experiments.Table, error) { return experiments.E5DeliveryLatency(meshes, pairs, *seed) }},
		{"E6", func() (*experiments.Table, error) { return experiments.E6EmergencyRouting(*seed) }},
		{"E7", func() (*experiments.Table, error) { return experiments.E7DropPolicy(*seed) }},
		{"E8", func() (*experiments.Table, error) { return experiments.E8MonitorElection(1000, *seed), nil }},
		{"E9", func() (*experiments.Table, error) {
			return experiments.E9FloodFill(meshes, []int{1, 2, 4}, *seed)
		}},
		{"E10", func() (*experiments.Table, error) { return experiments.E10Energy(), nil }},
		{"E11", func() (*experiments.Table, error) {
			return experiments.E11MulticastVsBroadcast(16, []int{10, 100, 1000, 4000}, *seed)
		}},
		{"E12", func() (*experiments.Table, error) {
			return experiments.E12Retina([]float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.5}, *seed)
		}},
		{"E13", func() (*experiments.Table, error) { return experiments.E13DeferredEvents(*seed) }},
		{"E14", func() (*experiments.Table, error) { return experiments.E14BoundedAsynchrony() }},
		{"A1", func() (*experiments.Table, error) { return experiments.AblationTableMinimisation(*seed) }},
		{"A2", func() (*experiments.Table, error) { return experiments.AblationPlacement(*seed) }},
	}

	failures := 0
	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		tbl, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", r.id, err)
			failures++
			continue
		}
		fmt.Println(tbl.Render())
		if !strings.HasPrefix(tbl.Verdict, "MATCHES PAPER") {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) diverged from the paper\n", failures)
		os.Exit(1)
	}
}

# Tier-1 verification plus the race pass that continuously checks the
# sharded parallel engine. `make check` is what CI runs.

GO ?= go

.PHONY: build test race vet cover bench bench-workers benchcmp scale-smoke fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sharded engine's concurrency is exercised by the determinism suite
# (Workers>1, every partition geometry, repartition on and off, batched
# host traffic) and the sim/router/benchsweep packages; keep them under
# the race detector on every change.
race:
	$(GO) test -race ./internal/sim/ ./internal/router/ ./internal/benchsweep/ ./internal/workload/
	$(GO) test -race -run 'TestDeterminism|TestDifferentSeeds|TestBoardLookahead|TestCabinetLookahead|TestRepartition|TestShiftingHotspot|TestBatch|TestFillMem|TestHostOrigin|TestHostTimeout|TestSnapshot|TestCampaign|TestFailChip|TestFillRedundancy|TestWorkload' .

# Tier-1 coverage of the engine + host + snapshot-codec packages, gated
# in CI at the PR-10 baseline (93.2%).
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic \
		-coverpkg=spinngo/internal/sim,spinngo/internal/host,spinngo/internal/snap \
		./internal/sim/ ./internal/host/ ./internal/snap/ .
	$(GO) tool cover -func=cover.out | tail -1

# Worker/partition/board-hierarchy sweep of the end-to-end machine
# benchmark (8x8 worker grid plus 8x8/16x16/32x32 bands-vs-blocks-vs-
# boards comparison plus the workers x GOMAXPROCS scaling sweep plus the
# shifting-hotspot repartition, host-load, scale and fault-campaign
# scenarios), recorded as JSON for the bench trajectory.
bench:
	$(GO) run ./cmd/benchsweep -out BENCH_PR10.json

# A short coverage-guided fuzz pass over the workload/campaign parsers;
# the seed corpora live in internal/workload/testdata/fuzz. CI runs the
# same smoke.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzParseWorkload' -fuzztime 10s ./internal/workload/
	$(GO) test -run '^$$' -fuzz 'FuzzParseCampaign' -fuzztime 10s ./internal/workload/

# The scale scenario alone: bytes of live heap per chip on idle and
# booted machines up to a 256x256 torus, plus the achieved lookahead of
# each packaging level. The memory ceiling keeps a sparse-state
# regression (anything proportional to torus size on the boot path) from
# passing silently; CI runs this as its scale smoke.
scale-smoke:
	GOMEMLIMIT=512MiB $(GO) run ./cmd/benchsweep -scale-only -out ''

# The same sweep through `go test -bench` (human-readable only).
bench-workers:
	$(GO) test -run '^$$' -bench 'BenchmarkMachineBioSecondWorkers' -benchtime 3x .

# Diff two bench trajectory files cell-by-cell; override OLD/NEW to
# compare any pair, e.g. `make benchcmp OLD=BENCH_PR5.json`.
OLD ?= BENCH_PR9.json
NEW ?= BENCH_PR10.json
benchcmp:
	$(GO) run ./cmd/benchcmp $(OLD) $(NEW)

check: build vet test race

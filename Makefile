# Tier-1 verification plus the race pass that continuously checks the
# sharded parallel engine. `make check` is what CI runs.

GO ?= go

.PHONY: build test race vet bench bench-workers check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sharded engine's concurrency is exercised by the determinism suite
# (Workers>1, every partition geometry, repartition on and off) and the
# sim/router packages; keep them under the race detector on every change.
race:
	$(GO) test -race ./internal/sim/ ./internal/router/
	$(GO) test -race -run 'TestDeterminism|TestDifferentSeeds|TestBoardLookahead|TestRepartition|TestShiftingHotspot' .

# Worker/partition/board-hierarchy sweep of the end-to-end machine
# benchmark (8x8 worker grid plus 8x8/16x16/32x32 bands-vs-blocks-vs-
# boards comparison plus the shifting-hotspot repartition scenario),
# recorded as JSON for the bench trajectory.
bench:
	$(GO) run ./cmd/benchsweep -out BENCH_PR4.json

# The same sweep through `go test -bench` (human-readable only).
bench-workers:
	$(GO) test -run '^$$' -bench 'BenchmarkMachineBioSecondWorkers' -benchtime 3x .

check: build vet test race

# Tier-1 verification plus the race pass that continuously checks the
# sharded parallel engine. `make check` is what CI runs.

GO ?= go

.PHONY: build test race vet bench-workers check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sharded engine's concurrency is exercised by the determinism suite
# (Workers>1) and the sim/router packages; keep them under the race
# detector on every change.
race:
	$(GO) test -race ./internal/sim/ ./internal/router/
	$(GO) test -race -run 'TestDeterminism|TestDifferentSeeds' .

# Worker-count scaling sweep of the end-to-end machine benchmark.
bench-workers:
	$(GO) test -run '^$$' -bench 'BenchmarkMachineBioSecondWorkers' -benchtime 3x .

check: build vet test race
